// Package uarch models the host machine the simulator runs on: VIPT L1
// caches, a cache hierarchy with LLC occupancy tracking, multi-level TLBs
// with configurable page sizes, a branch predictor with a BTB, the decoded
// uop cache (DSB) versus legacy decoder (MITE) front end, and Top-Down
// cycle accounting in the style of VTune's microarchitecture analysis.
//
// The structures are simulated exactly (tags, LRU, history); cycles are
// composed from their outcomes with a calibrated analytical model (see
// DESIGN.md), which is what lets every figure of the paper be regenerated
// in simulation.
package uarch

// CacheGeom is the geometry of one cache level.
type CacheGeom struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
}

// Sets returns the set count.
func (g CacheGeom) Sets() uint64 {
	return g.SizeBytes / (uint64(g.Ways) * g.LineBytes)
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// cache is a set-associative LRU cache over 64-bit host addresses.
type cache struct {
	geom     CacheGeom
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	seq      uint64

	Accesses uint64
	Misses   uint64
	resident uint64 // valid line count for occupancy
}

func newCache(g CacheGeom) *cache {
	sets := g.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		panic("uarch: cache set count must be a nonzero power of two")
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		panic("uarch: line size must be a power of two")
	}
	c := &cache{geom: g, setMask: sets - 1}
	for g.LineBytes>>c.lineBits > 1 {
		c.lineBits++
	}
	c.sets = make([][]cacheLine, sets)
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, g.Ways)
	}
	return c
}

// access looks up addr, filling on miss. Returns true on hit.
func (c *cache) access(addr uint64) bool {
	c.Accesses++
	block := addr >> c.lineBits
	set := c.sets[block&c.setMask]
	tag := block >> popcount(c.setMask)
	c.seq++
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.seq
			return true
		}
		if !l.valid {
			victim = l
		} else if victim.valid && l.lru < victim.lru {
			victim = l
		}
	}
	c.Misses++
	if !victim.valid {
		c.resident++
	}
	victim.tag = tag
	victim.valid = true
	victim.lru = c.seq
	return false
}

// probe reports whether addr is resident without updating state.
func (c *cache) probe(addr uint64) bool {
	block := addr >> c.lineBits
	set := c.sets[block&c.setMask]
	tag := block >> popcount(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// OccupancyBytes returns resident lines times the line size.
func (c *cache) OccupancyBytes() uint64 { return c.resident * c.geom.LineBytes }

// MissRate returns misses/accesses.
func (c *cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func popcount(mask uint64) uint {
	var n uint
	for mask != 0 {
		n += uint(mask & 1)
		mask >>= 1
	}
	return n
}

// tlb is a fully-associative LRU TLB keyed by page number.
type tlb struct {
	entries []struct {
		page, lru uint64
		valid     bool
	}
	seq      uint64
	Accesses uint64
	Misses   uint64
}

func newTLB(entries int) *tlb {
	if entries <= 0 {
		panic("uarch: TLB needs entries")
	}
	t := &tlb{}
	t.entries = make([]struct {
		page, lru uint64
		valid     bool
	}, entries)
	return t
}

// access looks up a page number, filling on miss; returns true on hit.
func (t *tlb) access(page uint64) bool {
	t.Accesses++
	t.seq++
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.seq
			return true
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	t.Misses++
	victim.page = page
	victim.valid = true
	victim.lru = t.seq
	return false
}

// MissRate returns misses/accesses.
func (t *tlb) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// gshare is a tournament direction predictor (per-PC bimodal + global
// history gshare + a choice table) with a BTB for indirect targets, loosely
// modeling the Xeon's and M1's front-end predictors.
type gshare struct {
	bimodal []uint8 // 2-bit counters indexed by PC
	global  []uint8 // 2-bit counters indexed by PC^history
	choice  []uint8 // 2-bit: >=2 means trust global
	mask    uint64
	history uint64

	btb []struct {
		tag, target uint64
		valid       bool
	}
	btbMask uint64

	Lookups        uint64
	Mispredicts    uint64
	IndirectClears uint64 // BAClears: unknown indirect targets
}

func newGshare(tableEntries, btbEntries int) *gshare {
	if tableEntries&(tableEntries-1) != 0 || btbEntries&(btbEntries-1) != 0 {
		panic("uarch: predictor sizes must be powers of two")
	}
	g := &gshare{
		bimodal: make([]uint8, tableEntries),
		global:  make([]uint8, tableEntries),
		choice:  make([]uint8, tableEntries),
		mask:    uint64(tableEntries - 1),
	}
	for i := range g.bimodal {
		g.bimodal[i] = 2 // weakly taken
		g.global[i] = 2
		g.choice[i] = 1 // prefer bimodal until global proves itself
	}
	g.btb = make([]struct {
		tag, target uint64
		valid       bool
	}, btbEntries)
	g.btbMask = uint64(btbEntries - 1)
	return g
}

// conditional predicts and trains one conditional branch; returns true when
// the prediction was correct.
func (g *gshare) conditional(pc uint64, taken bool) bool {
	g.Lookups++
	bi := (pc >> 1) & g.mask
	gi := (pc>>1 ^ g.history) & g.mask
	bPred := g.bimodal[bi] >= 2
	gPred := g.global[gi] >= 2
	pred := bPred
	if g.choice[bi] >= 2 {
		pred = gPred
	}
	// Train the choice table toward whichever component was right.
	if gPred == taken && bPred != taken && g.choice[bi] < 3 {
		g.choice[bi]++
	} else if bPred == taken && gPred != taken && g.choice[bi] > 0 {
		g.choice[bi]--
	}
	train := func(t []uint8, i uint64) {
		if taken {
			if t[i] < 3 {
				t[i]++
			}
		} else if t[i] > 0 {
			t[i]--
		}
	}
	train(g.bimodal, bi)
	train(g.global, gi)
	g.history = g.history<<1 | b2u64(taken)
	correct := pred == taken
	if !correct {
		g.Mispredicts++
	}
	return correct
}

// indirect predicts and trains one indirect branch; returns true when the
// BTB had the right target.
func (g *gshare) indirect(pc, target uint64) bool {
	g.Lookups++
	idx := (pc >> 1) & g.btbMask
	e := &g.btb[idx]
	hit := e.valid && e.tag == pc && e.target == target
	if !hit {
		g.IndirectClears++
		g.Mispredicts++
	}
	e.tag = pc
	e.target = target
	e.valid = true
	return hit
}

// MispredictRate returns mispredicts/lookups.
func (g *gshare) MispredictRate() float64 {
	if g.Lookups == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Lookups)
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
