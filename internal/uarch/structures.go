// Package uarch models the host machine the simulator runs on: VIPT L1
// caches, a cache hierarchy with LLC occupancy tracking, multi-level TLBs
// with configurable page sizes, a branch predictor with a BTB, the decoded
// uop cache (DSB) versus legacy decoder (MITE) front end, and Top-Down
// cycle accounting in the style of VTune's microarchitecture analysis.
//
// The structures are simulated exactly (tags, LRU, history); cycles are
// composed from their outcomes with a calibrated analytical model (see
// DESIGN.md), which is what lets every figure of the paper be regenerated
// in simulation.
package uarch

import "math/bits"

// CacheGeom is the geometry of one cache level.
type CacheGeom struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
}

// Sets returns the set count.
func (g CacheGeom) Sets() uint64 {
	return g.SizeBytes / (uint64(g.Ways) * g.LineBytes)
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// cache is a set-associative LRU cache over 64-bit host addresses. The
// line array is a single contiguous set-major slice (lines[set*ways+way])
// rather than a slice-of-slices: one allocation, no per-access pointer
// chase, and the set/tag shifts are computed once at construction instead
// of popcounting the mask on every lookup.
type cache struct {
	geom     CacheGeom
	lines    []cacheLine // sets × ways, set-major
	setMask  uint64
	setBits  uint
	lineBits uint
	ways     uint64
	seq      uint64

	Accesses uint64
	Misses   uint64
	resident uint64 // valid line count for occupancy

	// evictedTag/evictedOK record the most recent eviction of a valid
	// line; written only on the (already expensive) eviction path, read
	// by the differential tests.
	evictedTag uint64
	evictedOK  bool
}

func newCache(g CacheGeom) *cache {
	sets := g.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		panic("uarch: cache set count must be a nonzero power of two")
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		panic("uarch: line size must be a power of two")
	}
	c := &cache{
		geom:     g,
		setMask:  sets - 1,
		setBits:  uint(bits.OnesCount64(sets - 1)),
		lineBits: uint(bits.TrailingZeros64(g.LineBytes)),
		ways:     uint64(g.Ways),
		lines:    make([]cacheLine, sets*uint64(g.Ways)),
	}
	return c
}

// access looks up addr, filling on miss. Returns true on hit.
func (c *cache) access(addr uint64) bool {
	c.Accesses++
	block := addr >> c.lineBits
	base := (block & c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	tag := block >> c.setBits
	c.seq++
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.seq
			return true
		}
		if !l.valid {
			victim = l
		} else if victim.valid && l.lru < victim.lru {
			victim = l
		}
	}
	c.Misses++
	if !victim.valid {
		c.resident++
	} else {
		c.evictedTag, c.evictedOK = victim.tag, true
	}
	victim.tag = tag
	victim.valid = true
	victim.lru = c.seq
	return false
}

// probe reports whether addr is resident without updating state.
func (c *cache) probe(addr uint64) bool {
	block := addr >> c.lineBits
	base := (block & c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	tag := block >> c.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// OccupancyBytes returns resident lines times the line size.
func (c *cache) OccupancyBytes() uint64 { return c.resident * c.geom.LineBytes }

// MissRate returns misses/accesses.
func (c *cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// gshare is a tournament direction predictor (per-PC bimodal + global
// history gshare + a choice table) with a BTB for indirect targets, loosely
// modeling the Xeon's and M1's front-end predictors.
type gshare struct {
	bimodal []uint8 // 2-bit counters indexed by PC
	global  []uint8 // 2-bit counters indexed by PC^history
	choice  []uint8 // 2-bit: >=2 means trust global
	mask    uint64
	history uint64

	btb []struct {
		tag, target uint64
		valid       bool
	}
	btbMask uint64

	Lookups        uint64
	Mispredicts    uint64
	IndirectClears uint64 // BAClears: unknown indirect targets
}

func newGshare(tableEntries, btbEntries int) *gshare {
	if tableEntries&(tableEntries-1) != 0 || btbEntries&(btbEntries-1) != 0 {
		panic("uarch: predictor sizes must be powers of two")
	}
	g := &gshare{
		bimodal: make([]uint8, tableEntries),
		global:  make([]uint8, tableEntries),
		choice:  make([]uint8, tableEntries),
		mask:    uint64(tableEntries - 1),
	}
	for i := range g.bimodal {
		g.bimodal[i] = 2 // weakly taken
		g.global[i] = 2
		g.choice[i] = 1 // prefer bimodal until global proves itself
	}
	g.btb = make([]struct {
		tag, target uint64
		valid       bool
	}, btbEntries)
	g.btbMask = uint64(btbEntries - 1)
	return g
}

// conditional predicts and trains one conditional branch; returns true when
// the prediction was correct.
func (g *gshare) conditional(pc uint64, taken bool) bool {
	g.Lookups++
	bi := (pc >> 1) & g.mask
	gi := (pc>>1 ^ g.history) & g.mask
	bPred := g.bimodal[bi] >= 2
	gPred := g.global[gi] >= 2
	pred := bPred
	if g.choice[bi] >= 2 {
		pred = gPred
	}
	// Train the choice table toward whichever component was right.
	if gPred == taken && bPred != taken && g.choice[bi] < 3 {
		g.choice[bi]++
	} else if bPred == taken && gPred != taken && g.choice[bi] > 0 {
		g.choice[bi]--
	}
	train := func(t []uint8, i uint64) {
		if taken {
			if t[i] < 3 {
				t[i]++
			}
		} else if t[i] > 0 {
			t[i]--
		}
	}
	train(g.bimodal, bi)
	train(g.global, gi)
	g.history = g.history<<1 | b2u64(taken)
	correct := pred == taken
	if !correct {
		g.Mispredicts++
	}
	return correct
}

// indirect predicts and trains one indirect branch; returns true when the
// BTB had the right target.
func (g *gshare) indirect(pc, target uint64) bool {
	g.Lookups++
	idx := (pc >> 1) & g.btbMask
	e := &g.btb[idx]
	hit := e.valid && e.tag == pc && e.target == target
	if !hit {
		g.IndirectClears++
		g.Mispredicts++
	}
	e.tag = pc
	e.target = target
	e.valid = true
	return hit
}

// MispredictRate returns mispredicts/lookups.
func (g *gshare) MispredictRate() float64 {
	if g.Lookups == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Lookups)
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
