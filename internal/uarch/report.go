package uarch

import (
	"fmt"
	"strings"
)

// Breakdown is a normalized Top-Down view (fractions of total cycles).
type Breakdown struct {
	Retiring       float64
	FrontEndBound  float64
	BadSpeculation float64
	BackEndBound   float64

	// Front-end split (fractions of total cycles).
	FELatency   float64
	FEBandwidth float64

	// Front-end latency components.
	ICacheMisses      float64
	ITLBMisses        float64
	MispredictResteer float64
	ClearResteer      float64
	UnknownBranches   float64

	// Front-end bandwidth components.
	MITE float64
	DSB  float64
}

// Report is a snapshot of one machine's counters and cycle accounting; one
// Report backs every per-configuration bar in the paper's figures.
type Report struct {
	Machine string
	TopDown TopDown
	Level1  Breakdown

	Cycles      float64
	TimeSeconds float64
	Uops        uint64
	IPC         float64
	StallFrac   float64

	ICacheMissRate float64
	DCacheMissRate float64
	ITLBMissRate   float64
	DTLBMissRate   float64
	L2MissRate     float64

	BranchMispredictRate float64
	DSBCoverage          float64

	LLCOccupancyBytes uint64
	DRAMBytes         uint64
	DRAMBandwidthUtil float64
}

// Report captures the machine's current state.
func (m *Machine) Report() Report {
	total := m.td.Total()
	if total == 0 {
		total = 1
	}
	r := Report{
		Machine:        m.cfg.Name,
		TopDown:        m.td,
		Cycles:         m.td.Total(),
		TimeSeconds:    m.TimeSeconds(),
		Uops:           m.uops,
		ICacheMissRate: m.l1i.MissRate(),
		DCacheMissRate: m.l1d.MissRate(),
		ITLBMissRate:   m.itlb.MissRate(),
		DTLBMissRate:   m.dtlb.MissRate(),
		L2MissRate:     m.l2.MissRate(),
		DRAMBytes:      m.dramBytes,
	}
	if m.llc != nil {
		r.LLCOccupancyBytes = m.llc.OccupancyBytes()
	} else {
		r.LLCOccupancyBytes = m.l2.OccupancyBytes()
	}
	r.BranchMispredictRate = m.bp.MispredictRate()
	r.IPC = float64(m.uops) / r.Cycles
	r.StallFrac = 1 - m.td.RetiringCycles/total
	if m.uopsDSB+m.uopsMITE > 0 {
		r.DSBCoverage = float64(m.uopsDSB) / float64(m.uopsDSB+m.uopsMITE)
	}
	if r.TimeSeconds > 0 && m.cfg.PeakDRAMBytesPerSec > 0 {
		r.DRAMBandwidthUtil = float64(m.dramBytes) / r.TimeSeconds / m.cfg.PeakDRAMBytesPerSec
	}
	r.Level1 = Breakdown{
		Retiring:          m.td.RetiringCycles / total,
		FrontEndBound:     m.td.FrontEndBound() / total,
		BadSpeculation:    m.td.BadSpecCycles / total,
		BackEndBound:      m.td.BackEndBound() / total,
		FELatency:         m.td.FELatency() / total,
		FEBandwidth:       m.td.FEBandwidth() / total,
		ICacheMisses:      m.td.FELatICache / total,
		ITLBMisses:        m.td.FELatITLB / total,
		MispredictResteer: m.td.FELatMispredictResteer / total,
		ClearResteer:      m.td.FELatClearResteer / total,
		UnknownBranches:   m.td.FELatUnknownBranch / total,
		MITE:              m.td.FEBandwidthMITE / total,
		DSB:               m.td.FEBandwidthDSB / total,
	}
	return r
}

// String renders the report in a VTune-summary-like layout.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Machine)
	fmt.Fprintf(&b, "cycles %.0f  time %.6fs  uops %d  uops/cycle %.2f  stalled %.1f%%\n",
		r.Cycles, r.TimeSeconds, r.Uops, r.IPC, 100*r.StallFrac)
	fmt.Fprintf(&b, "Top-Down: retiring %.1f%%  front-end %.1f%%  bad-spec %.1f%%  back-end %.1f%%\n",
		100*r.Level1.Retiring, 100*r.Level1.FrontEndBound,
		100*r.Level1.BadSpeculation, 100*r.Level1.BackEndBound)
	fmt.Fprintf(&b, "  FE latency %.1f%% (iCache %.1f%%, iTLB %.1f%%, mispredict resteers %.1f%%, clear resteers %.1f%%, unknown branches %.1f%%)\n",
		100*r.Level1.FELatency, 100*r.Level1.ICacheMisses, 100*r.Level1.ITLBMisses,
		100*r.Level1.MispredictResteer, 100*r.Level1.ClearResteer, 100*r.Level1.UnknownBranches)
	fmt.Fprintf(&b, "  FE bandwidth %.1f%% (MITE %.1f%%, DSB %.1f%%), DSB coverage %.1f%%\n",
		100*r.Level1.FEBandwidth, 100*r.Level1.MITE, 100*r.Level1.DSB, 100*r.DSBCoverage)
	fmt.Fprintf(&b, "caches: L1I miss %.2f%%  L1D miss %.2f%%  iTLB miss %.2f%%  dTLB miss %.2f%%  BP mispredict %.3f%%\n",
		100*r.ICacheMissRate, 100*r.DCacheMissRate, 100*r.ITLBMissRate,
		100*r.DTLBMissRate, 100*r.BranchMispredictRate)
	fmt.Fprintf(&b, "LLC occupancy %.1f KB  DRAM traffic %.1f KB  DRAM BW util %.3f%%\n",
		float64(r.LLCOccupancyBytes)/1024, float64(r.DRAMBytes)/1024, 100*r.DRAMBandwidthUtil)
	return b.String()
}
