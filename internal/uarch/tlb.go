package uarch

import "gem5prof/internal/lruidx"

// tlb is a fully-associative exact-LRU TLB keyed by page number.
//
// It used to be a linear-scan entry file — O(entries) per access, which
// for the 1.5k-entry STLB made TLB lookups the hottest path of the
// whole co-simulation. The lruidx.Index gives the same observable
// behaviour (hit iff resident, victim is always the exact LRU page) in
// O(1); TestTLBDifferential proves hit-for-hit and victim-for-victim
// equality against the old scan on randomized streams.
type tlb struct {
	idx      *lruidx.Index
	Accesses uint64
	Misses   uint64

	// evictedPage/evictedOK record the most recent eviction; written only
	// on the eviction path, read by the differential tests.
	evictedPage uint64
	evictedOK   bool
}

func newTLB(entries int) *tlb {
	if entries <= 0 {
		panic("uarch: TLB needs entries")
	}
	return &tlb{idx: lruidx.New(entries)}
}

// access looks up a page number, filling on miss; returns true on hit.
func (t *tlb) access(page uint64) bool {
	t.Accesses++
	if slot, ok := t.idx.Lookup(page); ok {
		t.idx.Touch(slot)
		return true
	}
	t.Misses++
	if _, ev, wasEvict := t.idx.Insert(page); wasEvict {
		t.evictedPage, t.evictedOK = ev, true
	}
	return false
}

// MissRate returns misses/accesses.
func (t *tlb) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
