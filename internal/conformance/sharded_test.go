package conformance

import (
	"fmt"
	"strings"
	"testing"

	"gem5prof/internal/isa"
)

// diffSharded runs prog on one model serially and at the given shard count,
// returning a description of every field that differs ("" when identical).
// The comparison covers the full Result — architectural end state, retired
// count, memory checksum, trace hash, final ticks — plus a rendered dump of
// the statistics registry, so a single diverging counter fails it.
func diffSharded(model string, prog *isa.Program, shards int) (string, error) {
	serial, err := RunModel(model, prog, true, nil)
	if err != nil {
		return "", fmt.Errorf("serial: %w", err)
	}
	sharded, err := RunModelSharded(model, prog, true, shards, nil)
	if err != nil {
		return "", fmt.Errorf("shards=%d: %w", shards, err)
	}
	var diffs []string
	add := func(field string, got, want interface{}) {
		diffs = append(diffs, fmt.Sprintf("%s: shards=%d got %v, serial %v", field, shards, got, want))
	}
	if sharded.ExitCode != serial.ExitCode {
		add("exit", sharded.ExitCode, serial.ExitCode)
	}
	if sharded.Retired != serial.Retired {
		add("retired", sharded.Retired, serial.Retired)
	}
	if sharded.MemSum != serial.MemSum {
		add("mem", sharded.MemSum, serial.MemSum)
	}
	if sharded.TraceHash != serial.TraceHash {
		add("trace", sharded.TraceHash, serial.TraceHash)
	}
	if sharded.Ticks != serial.Ticks {
		add("ticks", sharded.Ticks, serial.Ticks)
	}
	for r := 0; r < 32; r++ {
		if sharded.Regs[r] != serial.Regs[r] {
			add(fmt.Sprintf("x%d", r), sharded.Regs[r], serial.Regs[r])
		}
		if sharded.FRegs[r] != serial.FRegs[r] {
			add(fmt.Sprintf("f%d", r), sharded.FRegs[r], serial.FRegs[r])
		}
	}
	if ss, sh := statDump(serial), statDump(sharded); ss != sh {
		add("stats", firstStatDiff(sh, ss), "(see diff)")
	}
	return strings.Join(diffs, "; "), nil
}

// statDump renders a registry deterministically for byte comparison.
func statDump(r *Result) string {
	var b strings.Builder
	for _, name := range r.Stats.Names() {
		fmt.Fprintf(&b, "%s = %v\n", name, r.Stats.Get(name))
	}
	return b.String()
}

// firstStatDiff returns the first differing line pair of two stat dumps.
func firstStatDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("%q (serial %q)", gl[i], wl[i])
		}
	}
	return fmt.Sprintf("dump length %d vs %d", len(gl), len(wl))
}

// TestShardedLockstepDifferential sweeps the conformance corpus through
// every CPU model at shard counts 2 and 4 and requires the full Result to
// be identical to the serial run's. On a mismatch it ddmin-minimizes the
// generated program to the smallest source still diverging, so the failure
// message is directly actionable.
func TestShardedLockstepDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		g := Generate(GenConfig{Seed: seed})
		prog, err := isa.Assemble(g.Src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		for _, model := range Models {
			for _, shards := range []int{2, 4} {
				diff, err := diffSharded(model, prog, shards)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, model, err)
				}
				if diff == "" {
					continue
				}
				// Minimize before reporting: the smallest program whose
				// sharded run still diverges from serial.
				min := Minimize(g.Src, func(src string) bool {
					p, err := isa.Assemble(src)
					if err != nil {
						return false
					}
					d, err := diffSharded(model, p, shards)
					return err == nil && d != ""
				}, 200)
				t.Fatalf("seed %d %s shards=%d diverged from serial:\n%s\nminimized reproducer:\n%s",
					seed, model, shards, diff, min)
			}
		}
	}
}

// FuzzShardedEquivalence lets the fuzzer hunt for generated programs whose
// sharded execution diverges from serial on any model — the bit-identity
// claim under adversarial event patterns rather than fixed seeds.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0))
	f.Add(int64(42), byte(3), byte(1))
	f.Add(int64(-77), byte(5), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, blocks, sel byte) {
		g := Generate(GenConfig{Seed: seed, Blocks: 2 + int(blocks%6)})
		prog, err := isa.Assemble(g.Src)
		if err != nil {
			t.Fatalf("generator emitted unassemblable source: %v\n%s", err, g.Src)
		}
		model := Models[int(sel)%len(Models)]
		shards := []int{2, 4}[int(sel/4)%2]
		diff, err := diffSharded(model, prog, shards)
		if err != nil {
			t.Fatalf("%s shards=%d: %v", model, shards, err)
		}
		if diff != "" {
			t.Errorf("%s shards=%d diverged from serial: %s", model, shards, diff)
		}
	})
}
