package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
	"gem5prof/internal/sysemu"
)

// The litmus suite checks the multicore guest's memory model. The simulator
// is sequentially consistent by construction — every load and store executes
// atomically at execute time in one global deterministic event order — so a
// multi-threaded guest must only ever exhibit SC outcomes. Each litmus test
// is a seeded multi-threaded KISA program shaped after the classic MP / SB /
// LB / IRIW patterns (plus random extra shared accesses and private timing
// filler): the worker threads pack the values their loads observed into
// disjoint nibbles of their exit words, the main thread joins them and exits
// with the combined outcome, and the harness compares that outcome against
// the set an SC reference interpreter admits by exhaustively interleaving
// the per-thread shared-access sequences. Any outcome outside the set —
// e.g. the relaxed MP reorder r1=1,r2=0 — is a coherence or determinism bug
// in the multicore machinery, not a legal weak-memory behaviour.

// litOp is one shared-memory access of a litmus thread.
type litOp struct {
	store bool
	loc   int    // shared location index (one cache block each)
	val   uint32 // stores: value written (1..3, unique per location)
	slot  int    // loads: global observation nibble index
}

// LitmusTest is one generated litmus program.
type LitmusTest struct {
	Name    string
	Seed    int64
	Shape   string
	Threads [][]litOp
	// Src is the assembled-from KISA source (thread 0 on the main core,
	// workers spawned through the SE threading syscalls).
	Src string
	// Allowed is the set of outcome words admitted by the SC reference
	// interpreter.
	Allowed map[uint32]bool
}

// litShapes are the classic bases; threads beyond the guest core count are
// never generated.
var litShapes = []struct {
	name    string
	threads [][]litOp
}{
	{"mp", [][]litOp{
		{{store: true, loc: 0}, {store: true, loc: 1}},
		{{loc: 1}, {loc: 0}},
	}},
	{"sb", [][]litOp{
		{{store: true, loc: 0}, {loc: 1}},
		{{store: true, loc: 1}, {loc: 0}},
	}},
	{"lb", [][]litOp{
		{{loc: 0}, {store: true, loc: 1}},
		{{loc: 1}, {store: true, loc: 0}},
	}},
	{"iriw", [][]litOp{
		{{store: true, loc: 0}},
		{{store: true, loc: 1}},
		{{loc: 0}, {loc: 1}},
		{{loc: 1}, {loc: 0}},
	}},
}

// Generation bounds: nibble packing allows 8 observation slots and store
// values 1..3 per location.
const (
	litMaxOpsPerThread = 3
	litMaxObs          = 8
	litMaxLocs         = 4
	litStackStride     = 0x8000
	litStackTop        = 0x00F0_0000
)

// GenLitmus generates the litmus test for seed on a guest with the given
// core count (>= 2). Shapes needing more threads than cores are folded onto
// the 2-thread shapes.
func GenLitmus(seed int64, cores int) *LitmusTest {
	rng := rand.New(rand.NewSource(seed))
	nShapes := len(litShapes)
	if cores < 4 {
		nShapes-- // iriw needs 4 threads
	}
	shape := litShapes[rng.Intn(nShapes)]

	// Deep-copy the base so mutation never touches the table.
	threads := make([][]litOp, len(shape.threads))
	for t, ops := range shape.threads {
		threads[t] = append([]litOp(nil), ops...)
	}

	// Sprinkle extra shared accesses, respecting the packing bounds.
	extras := rng.Intn(3)
	for i := 0; i < extras; i++ {
		t := rng.Intn(len(threads))
		if len(threads[t]) >= litMaxOpsPerThread {
			continue
		}
		op := litOp{store: rng.Intn(2) == 0, loc: rng.Intn(litMaxLocs)}
		pos := rng.Intn(len(threads[t]) + 1)
		threads[t] = append(threads[t][:pos], append([]litOp{op}, threads[t][pos:]...)...)
	}

	// Assign store values (1..3 per location, in thread-then-program
	// order) and observation slots; drop stores past a location's third.
	nextVal := make([]uint32, litMaxLocs)
	slot := 0
	for t := range threads {
		kept := threads[t][:0]
		for _, op := range threads[t] {
			if op.store {
				if nextVal[op.loc] >= 3 {
					continue
				}
				nextVal[op.loc]++
				op.val = nextVal[op.loc]
			} else {
				if slot >= litMaxObs {
					continue
				}
				op.slot = slot
				slot++
			}
			kept = append(kept, op)
		}
		threads[t] = kept
	}

	lt := &LitmusTest{
		Name:    fmt.Sprintf("%s_%d", shape.name, seed),
		Seed:    seed,
		Shape:   shape.name,
		Threads: threads,
		Allowed: scOutcomes(threads),
	}
	lt.Src = emitLitmus(threads, rng)
	return lt
}

// scOutcomes is the sequentially consistent reference interpreter: it
// exhaustively interleaves the per-thread access sequences over an initially
// zero memory and collects every packed outcome SC admits. (It enumerates
// all interleavings, a superset of those realizable under the program's
// spawn/join ordering, so membership is a sound "no SC violation" check.)
func scOutcomes(threads [][]litOp) map[uint32]bool {
	out := map[uint32]bool{}
	var memv [litMaxLocs]uint32
	pcs := make([]int, len(threads))
	var rec func(acc uint32)
	rec = func(acc uint32) {
		done := true
		for t := range threads {
			if pcs[t] >= len(threads[t]) {
				continue
			}
			done = false
			op := threads[t][pcs[t]]
			pcs[t]++
			if op.store {
				old := memv[op.loc]
				memv[op.loc] = op.val
				rec(acc)
				memv[op.loc] = old
			} else {
				rec(acc | (memv[op.loc]&15)<<(4*op.slot))
			}
			pcs[t]--
		}
		if done {
			out[acc] = true
		}
	}
	rec(0)
	return out
}

// AllowedList renders the allowed outcome set, sorted, for diagnostics.
func (lt *LitmusTest) AllowedList() []uint32 {
	outs := make([]uint32, 0, len(lt.Allowed))
	//lint:deterministic collected keys are sorted before use
	for o := range lt.Allowed {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	return outs
}

// emitLitmus renders the test as KISA assembly. Shared locations live one
// cache block apart so every access is a distinct coherence unit; each
// thread also gets a private block for seeded timing filler.
func emitLitmus(threads [][]litOp, rng *rand.Rand) string {
	// filler emits 0..2 private instructions that perturb timing (and cache
	// state) without touching the shared observations.
	filler := func(t int) string {
		s := ""
		for i := rng.Intn(3); i > 0; i-- {
			switch rng.Intn(3) {
			case 0:
				s += fmt.Sprintf("\tadd%c t5, t5, %d\n", 'i', 1+rng.Intn(64))
			case 1:
				s += fmt.Sprintf("\tsw   t5, %d(s1)\n", t*64)
			default:
				s += fmt.Sprintf("\tlw   t6, %d(s1)\n", t*64)
			}
		}
		return s
	}
	body := func(t int) string {
		s := "\tla   s0, lit_locs\n\tla   s1, lit_priv\n\tli   s7, 0\n"
		for _, op := range threads[t] {
			s += filler(t)
			if op.store {
				s += fmt.Sprintf("\tli   t0, %d\n\tsw   t0, %d(s0)\n", op.val, op.loc*64)
			} else {
				s += fmt.Sprintf("\tlw   t1, %d(s0)\n\tandi t1, t1, 15\n", op.loc*64)
				if op.slot > 0 {
					s += fmt.Sprintf("\tslli t1, t1, %d\n", op.slot*4)
				}
				s += "\tor   s7, s7, t1\n"
			}
		}
		return s + filler(t)
	}

	src := fmt.Sprintf("\t.org 0x1000\n_start:\n\tli   sp, %#x\n", litStackTop)
	// Spawn workers 1..T-1, keeping their hart ids in s2..s4.
	for w := 1; w < len(threads); w++ {
		src += fmt.Sprintf(`	la   a0, litw%d
	li   a1, %#x
	li   a2, 0
	li   a7, 1001
	ecall
	mv   s%d, a0
`, w, litStackTop-w*litStackStride, 1+w)
	}
	src += body(0)
	for w := 1; w < len(threads); w++ {
		src += fmt.Sprintf("\tmv   a0, s%d\n\tli   a7, 1002\n\tecall\n\tor   s7, s7, a0\n", 1+w)
	}
	src += "\tmv   a0, s7\n\tli   a7, 93\n\tecall\n"
	for w := 1; w < len(threads); w++ {
		src += fmt.Sprintf("litw%d:\n", w)
		src += body(w)
		src += "\tmv   a0, s7\n\tli   a7, 1003\n\tecall\n"
	}
	src += fmt.Sprintf("\n\t.align 64\nlit_locs:\n\t.space %d\nlit_priv:\n\t.space %d\n",
		litMaxLocs*64, 8*64)
	return src
}

// LitmusResult is the outcome of one litmus run on one model.
type LitmusResult struct {
	Outcome uint32
	Ticks   sim.Tick
	// Violations holds the SC violation (if the outcome is outside the
	// allowed set) plus any coherence invariant or audit failures.
	Violations []string
	Stats      *sim.Registry
}

// OK reports a clean run.
func (r *LitmusResult) OK() bool { return len(r.Violations) == 0 }

// RunLitmus executes the test's program on a multicore SE guest rig (cores
// must be >= the test's thread count; extra cores stay parked) and checks
// the observed outcome against the SC set, the coherence stat invariants,
// and the directory's structural audit.
func RunLitmus(lt *LitmusTest, model string, cores int) (*LitmusResult, error) {
	return RunLitmusSharded(lt, model, cores, 1)
}

// RunLitmusSharded is RunLitmus on a sharded event queue: shards == 2 fuses
// the per-core domains onto the coordinator shard, shards > 2 gives each
// extra core domain its own affine shard (up to 2+min(cores-1, 3)), and the
// result must be identical at every shard count and layout (the battery
// diffs it against the serial run).
func RunLitmusSharded(lt *LitmusTest, model string, cores, shards int) (*LitmusResult, error) {
	if cores < len(lt.Threads) {
		return nil, fmt.Errorf("conformance: litmus %s needs %d cores, got %d", lt.Name, len(lt.Threads), cores)
	}
	prog, err := isa.Assemble(lt.Src)
	if err != nil {
		return nil, fmt.Errorf("conformance: litmus %s: assemble: %w", lt.Name, err)
	}
	sys := sim.NewSystem(7)
	gm := guest.NewMemory(memBytes)
	if err := gm.Load(prog); err != nil {
		return nil, err
	}
	se := sysemu.NewSEEnv(sys, gm, 0x0040_0000, 0x0080_0000)
	hcfg := mem.DefaultHierarchyConfig("sys")
	hcfg.Directory = true
	if shards >= 2 {
		sys.EnableSharding(sim.ShardConfig{
			Shards:       shards,
			Quantum:      sim.QuantumFor(hcfg.DRAM.RowHitLatency),
			BusLookahead: sim.QuantumFor(hcfg.Bus.Latency),
			Cores:        cores,
		})
	}
	hier := mem.NewMultiHierarchy(sys, hcfg, cores)
	cpus := make([]cpu.CPU, cores)
	for i := 0; i < cores; i++ {
		cfg := cpu.Config{
			Name:   fmt.Sprintf("cpu%d", i),
			Mem:    memAdapter{gm},
			Env:    se,
			HartID: uint32(i),
			Domain: sim.DomainForCore(i),
			IPort:  hier.IPort(i),
			DPort:  hier.DPort(i),
		}
		var c cpu.CPU
		switch model {
		case "atomic":
			c = cpu.NewAtomicCPU(sys, cfg)
		case "timing":
			c = cpu.NewTimingCPU(sys, cfg)
		case "minor":
			c = cpu.NewMinorCPU(sys, cfg, cpu.DefaultMinorConfig())
		case "o3":
			c = cpu.NewO3CPU(sys, cfg, cpu.DefaultO3Config())
		default:
			return nil, fmt.Errorf("conformance: unknown model %q", model)
		}
		cpus[i] = c
	}
	cores32 := make([]*cpu.Core, cores)
	for i, c := range cpus {
		cores32[i] = c.Core()
	}
	se.AttachCores(cores32)
	for _, c := range cores32[1:] {
		c.Park()
	}
	for _, c := range cpus {
		c.Start(prog.Entry)
	}
	res := sys.Run(runTimeout, eventLimit)
	if res.Status != sim.ExitRequested {
		return nil, fmt.Errorf("conformance: litmus %s on %s did not exit: %v after %d events (reason %q)",
			lt.Name, model, res.Status, res.Events, res.ExitReason)
	}
	out := &LitmusResult{Outcome: uint32(res.ExitCode), Ticks: sys.Now(), Stats: sys.Stats()}
	if !lt.Allowed[out.Outcome] {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"litmus %s on %s cores=%d: outcome %#x outside the SC-allowed set %#x",
			lt.Name, model, cores, out.Outcome, lt.AllowedList()))
	}
	for _, v := range CheckStats(sys.Stats(), model == "atomic") {
		out.Violations = append(out.Violations, fmt.Sprintf("litmus %s on %s cores=%d: %s", lt.Name, model, cores, v))
	}
	for _, v := range hier.Dir.Audit() {
		out.Violations = append(out.Violations, fmt.Sprintf("litmus %s on %s cores=%d: %s", lt.Name, model, cores, v))
	}
	return out, nil
}

// WriteLitmusRepro minimizes a violating litmus program with the shared
// ddmin and writes a reproducer source under dir, mirroring the campaign's
// writeRepro.
func WriteLitmusRepro(lt *LitmusTest, model string, cores int, dir string) (string, error) {
	stillFails := func(src string) bool {
		cand := *lt
		cand.Src = src
		r, err := RunLitmus(&cand, model, cores)
		return err == nil && !r.OK()
	}
	min := lt.Src
	if stillFails(lt.Src) {
		min = Minimize(lt.Src, stillFails, 200)
	}
	header := fmt.Sprintf(
		"# litmus reproducer\n# shape: %s seed: %d model: %s cores: %d\n# allowed: %#x\n# regenerate: GenLitmus(%d, %d)\n",
		lt.Shape, lt.Seed, model, cores, lt.AllowedList(), lt.Seed, cores)
	return writeReproFile(dir, fmt.Sprintf("litmus_%s_%s.s", lt.Name, model), header+min+"\n")
}
