package conformance

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gem5prof/internal/sim"
)

// CheckStats walks a run's statistics registry and verifies the
// metamorphic invariant catalog: conservation laws and orderings that must
// hold for ANY workload, random or real, regardless of the modeled
// timing. drained means the run quiesced at an instruction boundary with
// no in-flight memory accesses (true for the Atomic CPU, which resolves
// every access synchronously; false for the timing models, which may exit
// with accesses still outstanding in MSHRs), turning the cache
// conservation inequality into an equality.
//
// The catalog (see DESIGN.md "Conformance & invariants"):
//
//	cache:  hits + misses + mshrHits == accesses   (<= when not drained)
//	TLB:    hits + misses == translations          (lookups are synchronous)
//	cpu:    branches + loads + stores <= committedInsts
//	cpu:    ecalls <= committedInsts + 1           (final ecall is uncounted)
//	bp:     bpMispredicts <= bpLookups, btbMisses <= bpLookups
//	dram:   rowHits + rowMisses <= reads + writes
//	dir:    getS + getM == putS + putM + invals + droppedFills + tracked
//	        (<= when not drained), upgrades + downgrades <= getS + getM
//	histos: sum(buckets) == samples, min <= mean <= max
//	all:    every value is finite
func CheckStats(reg *sim.Registry, drained bool) []string {
	var violations []string
	bad := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Per-stat checks and prefix grouping.
	groups := make(map[string]map[string]float64)
	for _, s := range reg.All() {
		v := s.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad("%s: non-finite value %v", s.StatName(), v)
		}
		if h, ok := s.(*sim.Histogram); ok {
			checkHistogram(h, bad)
		}
		name := s.StatName()
		dot := strings.LastIndex(name, ".")
		if dot < 0 {
			continue
		}
		prefix, leaf := name[:dot], name[dot+1:]
		if groups[prefix] == nil {
			groups[prefix] = make(map[string]float64)
		}
		groups[prefix][leaf] = v
	}

	// Walk groups in sorted prefix order so the violation list — which
	// campaign reports and test failures print verbatim — is identical
	// across same-seed runs.
	prefixes := make([]string, 0, len(groups))
	//lint:deterministic keys are sorted before use
	for prefix := range groups {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		g := groups[prefix]
		switch {
		case has(g, "accesses", "mshrHits"):
			// Cache: every demand access entering the cache resolves as
			// exactly one of hit, miss, or MSHR coalesce.
			resolved := g["hits"] + g["misses"] + g["mshrHits"]
			if drained && resolved != g["accesses"] {
				bad("%s: hits+misses+mshrHits = %.0f != accesses = %.0f (drained)",
					prefix, resolved, g["accesses"])
			}
			if resolved > g["accesses"] {
				bad("%s: hits+misses+mshrHits = %.0f > accesses = %.0f",
					prefix, resolved, g["accesses"])
			}
		case has(g, "translations"):
			// TLB lookups resolve synchronously: exact in every run.
			if g["hits"]+g["misses"] != g["translations"] {
				bad("%s: hits+misses = %.0f != translations = %.0f",
					prefix, g["hits"]+g["misses"], g["translations"])
			}
		case has(g, "getS", "tracked"):
			// Coherence directory: every forwarded fetch resolves as exactly
			// one of a currently tracked copy, an observed eviction, a forced
			// invalidation, or a dropped in-flight install — so the transition
			// counts conserve. In-flight fetches are already counted in
			// getS/getM but not yet resolved, hence the inequality when the
			// system did not drain.
			fetches := g["getS"] + g["getM"]
			resolved := g["putS"] + g["putM"] + g["invals"] + g["droppedFills"] + g["tracked"]
			if drained && resolved != fetches {
				bad("%s: putS+putM+invals+droppedFills+tracked = %.0f != getS+getM = %.0f (drained)",
					prefix, resolved, fetches)
			}
			if resolved > fetches {
				bad("%s: putS+putM+invals+droppedFills+tracked = %.0f > getS+getM = %.0f",
					prefix, resolved, fetches)
			}
			// Each getS downgrades at most one owner (single-writer), and a
			// copy is upgradable only after a shared install (a getS) or a
			// downgrade.
			if g["downgrades"] > g["getS"] {
				bad("%s: downgrades = %.0f > getS = %.0f", prefix, g["downgrades"], g["getS"])
			}
			if g["upgrades"] > g["getS"]+g["downgrades"] {
				bad("%s: upgrades = %.0f > getS+downgrades = %.0f",
					prefix, g["upgrades"], g["getS"]+g["downgrades"])
			}
		case has(g, "rowHits", "reads"):
			// DRAM: every row-buffer outcome belongs to a transaction.
			if g["rowHits"]+g["rowMisses"] > g["reads"]+g["writes"] {
				bad("%s: rowHits+rowMisses = %.0f > reads+writes = %.0f",
					prefix, g["rowHits"]+g["rowMisses"], g["reads"]+g["writes"])
			}
		}
		if has(g, "committedInsts") {
			classes := g["branches"] + g["loads"] + g["stores"]
			if classes > g["committedInsts"] {
				bad("%s: branches+loads+stores = %.0f > committedInsts = %.0f",
					prefix, classes, g["committedInsts"])
			}
			// The terminating ecall requests exit before it is counted as
			// committed, so ecalls may exceed committedInsts by at most
			// one (a program that only ecalls).
			if g["ecalls"] > g["committedInsts"]+1 {
				bad("%s: ecalls = %.0f > committedInsts+1 = %.0f",
					prefix, g["ecalls"], g["committedInsts"]+1)
			}
		}
		if has(g, "bpLookups") {
			if g["bpMispredicts"] > g["bpLookups"] {
				bad("%s: bpMispredicts = %.0f > bpLookups = %.0f",
					prefix, g["bpMispredicts"], g["bpLookups"])
			}
			if g["btbMisses"] > g["bpLookups"] {
				bad("%s: btbMisses = %.0f > bpLookups = %.0f",
					prefix, g["btbMisses"], g["bpLookups"])
			}
		}
	}
	return violations
}

func has(g map[string]float64, keys ...string) bool {
	for _, k := range keys {
		if _, ok := g[k]; !ok {
			return false
		}
	}
	return true
}

func checkHistogram(h *sim.Histogram, bad func(string, ...any)) {
	var total uint64
	for i := 0; i < h.BucketCount(); i++ {
		total += h.Bucket(i)
	}
	if total != h.Samples() {
		bad("%s: bucket sum %d != samples %d", h.StatName(), total, h.Samples())
	}
	if h.Samples() > 0 {
		mean := h.Value()
		if h.Min() > mean || mean > h.Max() {
			bad("%s: mean %v outside [min %v, max %v]", h.StatName(), mean, h.Min(), h.Max())
		}
	}
	for _, v := range []float64{h.Sum(), h.Min(), h.Max()} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad("%s: non-finite histogram bound %v", h.StatName(), v)
		}
	}
}
