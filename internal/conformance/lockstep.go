package conformance

import (
	"fmt"
	"math"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// Models lists the guest CPU models under conformance test, in the
// paper's order of increasing detail.
var Models = []string{"atomic", "timing", "minor", "o3"}

// Run limits for one model execution of one generated program.
const (
	runTimeout = 10 * sim.Second
	eventLimit = 100_000_000
	// refMaxSteps bounds the reference interpreter; generated programs
	// are fuel-bounded far below this, so hitting it means the generator
	// (or the interpreter) is broken.
	refMaxSteps = 5_000_000
)

// memBytes is the guest memory size of every conformance rig.
const memBytes = 16 << 20

// Result is the observable outcome of running one program on one
// executor: the full architectural end state plus a hash of the committed
// instruction trace.
type Result struct {
	// Model is one of Models, or "ref" for the reference interpreter.
	Model    string
	ExitCode uint32
	Regs     [32]uint32
	// FRegs holds the float registers as raw bits so NaN payloads and
	// signed zeros compare exactly.
	FRegs [32]uint64
	// Retired is the committed instruction count. The terminating
	// ecall/ebreak unwinds before it is counted, on every executor.
	Retired uint64
	// MemSum is the allocation-independent checksum of final guest memory.
	MemSum uint64
	// TraceHash folds (pc, inst) of every committed instruction in order.
	TraceHash uint64
	// Ticks is the guest time at exit (0 for the reference interpreter,
	// which has no timing model).
	Ticks sim.Tick
	// Stats is the run's statistics registry (nil for the reference).
	Stats *sim.Registry
}

// traceHash accumulates an FNV-1a hash over the committed-instruction
// stream.
type traceHash uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newTraceHash() traceHash { return fnvOffset64 }

func (h *traceHash) mix(pc uint32, in isa.Inst) {
	v := uint64(*h)
	step := func(b byte) { v = (v ^ uint64(b)) * fnvPrime64 }
	for s := 0; s < 32; s += 8 {
		step(byte(pc >> s))
	}
	step(byte(in.Op))
	step(in.Rd)
	step(in.Rs1)
	step(in.Rs2)
	for s := 0; s < 32; s += 8 {
		step(byte(uint32(in.Imm) >> s))
	}
	*h = traceHash(v)
}

// exitEnv terminates the simulation on ecall/ebreak with a0 as the exit
// code, mirroring the bare-metal SE exit convention of the cpu tests.
type exitEnv struct{ sys *sim.System }

func (e *exitEnv) Ecall(c *cpu.Core) {
	c.Halt()
	e.sys.RequestExit("ecall exit", int(c.ReadReg(10)))
}

func (e *exitEnv) Ebreak(c *cpu.Core) {
	c.Halt()
	e.sys.RequestExit("ebreak exit", int(c.ReadReg(10)))
}

// memAdapter exposes guest.Memory as cpu.FuncMem.
type memAdapter struct{ m *guest.Memory }

func (a memAdapter) Read(addr uint32, size int) (uint64, error)  { return a.m.Read(addr, size) }
func (a memAdapter) Write(addr uint32, size int, v uint64) error { return a.m.Write(addr, size, v) }
func (a memAdapter) HostAddr(addr uint32) uint64                 { return a.m.HostAddr(addr) }

// RunModel executes prog on one CPU model (with or without the cache
// hierarchy) and captures its Result. commit, when non-nil, additionally
// observes every committed (pc, inst) pair.
func RunModel(model string, prog *isa.Program, caches bool, commit func(pc uint32, in isa.Inst)) (*Result, error) {
	return RunModelSharded(model, prog, caches, 1, commit)
}

// RunModelSharded is RunModel on sharded per-domain event queues (shards < 2
// stays serial; the layout clamps counts above 2). A cache-less rig has no
// memory domain to shard, so it stays serial regardless. Every field of the
// Result — architectural state, trace hash, ticks, statistics — must be
// identical at every shard count; the sharded differential suites diff it
// against the serial run over the whole conformance corpus.
func RunModelSharded(model string, prog *isa.Program, caches bool, shards int, commit func(pc uint32, in isa.Inst)) (*Result, error) {
	sys := sim.NewSystem(7)
	gm := guest.NewMemory(memBytes)
	if err := gm.Load(prog); err != nil {
		return nil, err
	}
	cfg := cpu.Config{Name: "cpu0", Mem: memAdapter{gm}, Env: &exitEnv{sys}}
	if caches {
		hcfg := mem.DefaultHierarchyConfig("sys")
		if shards >= 2 {
			sys.EnableSharding(sim.ShardConfig{
				Shards:       shards,
				Quantum:      sim.QuantumFor(hcfg.DRAM.RowHitLatency),
				BusLookahead: sim.QuantumFor(hcfg.Bus.Latency),
			})
		}
		hier := mem.NewHierarchy(sys, hcfg)
		cfg.IPort, cfg.DPort = hier.L1I, hier.L1D
	}
	var c cpu.CPU
	switch model {
	case "atomic":
		c = cpu.NewAtomicCPU(sys, cfg)
	case "timing":
		c = cpu.NewTimingCPU(sys, cfg)
	case "minor":
		c = cpu.NewMinorCPU(sys, cfg, cpu.DefaultMinorConfig())
	case "o3":
		c = cpu.NewO3CPU(sys, cfg, cpu.DefaultO3Config())
	default:
		return nil, fmt.Errorf("conformance: unknown model %q", model)
	}
	h := newTraceHash()
	c.Core().SetCommitHook(func(pc uint32, in isa.Inst) {
		h.mix(pc, in)
		if commit != nil {
			commit(pc, in)
		}
	})
	c.Start(prog.Entry)
	res := sys.Run(runTimeout, eventLimit)
	if res.Status != sim.ExitRequested {
		return nil, fmt.Errorf("conformance: %s did not exit: %v after %d events (reason %q)",
			model, res.Status, res.Events, res.ExitReason)
	}
	out := &Result{
		Model:     model,
		ExitCode:  uint32(res.ExitCode),
		Retired:   c.Core().CommittedInsts(),
		MemSum:    gm.Checksum(),
		TraceHash: uint64(h),
		Ticks:     res.Now,
		Stats:     sys.Stats(),
	}
	for r := uint8(0); r < 32; r++ {
		out.Regs[r] = c.Core().ReadReg(r)
		out.FRegs[r] = math.Float64bits(c.Core().ReadFReg(r))
	}
	return out, nil
}

// refCtx is a bare interpreter context over real guest memory: the oracle
// every pipeline model is compared against.
type refCtx struct {
	regs  [32]uint32
	fregs [32]float64
	pc    uint32
	csrs  map[uint32]uint32
	mem   *guest.Memory
}

func (c *refCtx) ReadReg(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}

func (c *refCtx) WriteReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}
func (c *refCtx) ReadFReg(r uint8) float64                 { return c.fregs[r] }
func (c *refCtx) WriteFReg(r uint8, v float64)             { c.fregs[r] = v }
func (c *refCtx) PC() uint32                               { return c.pc }
func (c *refCtx) ReadMem(a uint32, s int) (uint64, error)  { return c.mem.Read(a, s) }
func (c *refCtx) WriteMem(a uint32, s int, v uint64) error { return c.mem.Write(a, s, v) }
func (c *refCtx) ReadCSR(num uint32) uint32                { return c.csrs[num] }
func (c *refCtx) WriteCSR(num uint32, v uint32)            { c.csrs[num] = v }
func (c *refCtx) Ecall()                                   {}
func (c *refCtx) Ebreak()                                  {}
func (c *refCtx) Wfi()                                     {}

// Mret mirrors cpu.Core.Mret, including the MIE side effect, so programs
// using mret stay in architectural lockstep.
func (c *refCtx) Mret() uint32 {
	c.csrs[cpu.CSRMStatus] |= cpu.MStatusMIE
	return c.csrs[cpu.CSRMEPC]
}

// RunRef executes prog on the reference interpreter (no pipeline, no
// events) and captures its Result. It stops at the first ecall/ebreak
// *before* executing it, matching the CPU models whose exit request
// unwinds before the terminator is counted as committed.
func RunRef(prog *isa.Program, commit func(pc uint32, in isa.Inst)) (*Result, error) {
	gm := guest.NewMemory(memBytes)
	if err := gm.Load(prog); err != nil {
		return nil, err
	}
	ctx := &refCtx{csrs: map[uint32]uint32{}, mem: gm, pc: prog.Entry}
	h := newTraceHash()
	out := &Result{Model: "ref"}
	for steps := 0; steps < refMaxSteps; steps++ {
		w, err := gm.FetchWord(ctx.pc)
		if err != nil {
			return nil, fmt.Errorf("conformance: ref fetch: %w", err)
		}
		in := isa.Decode(w)
		if in.Op == isa.OpEcall || in.Op == isa.OpEbreak {
			out.ExitCode = ctx.ReadReg(10)
			out.Retired = uint64(steps)
			out.MemSum = gm.Checksum()
			out.TraceHash = uint64(h)
			for r := uint8(0); r < 32; r++ {
				out.Regs[r] = ctx.ReadReg(r)
				out.FRegs[r] = math.Float64bits(ctx.fregs[r])
			}
			return out, nil
		}
		o, err := isa.Execute(in, ctx)
		if err != nil {
			return nil, fmt.Errorf("conformance: ref exec at %#x: %w", ctx.pc, err)
		}
		h.mix(ctx.pc, in)
		if commit != nil {
			commit(ctx.pc, in)
		}
		ctx.pc = o.NextPC(ctx.pc)
	}
	return nil, fmt.Errorf("conformance: reference interpreter exceeded %d steps", refMaxSteps)
}

// Divergence reports one architectural mismatch between a CPU model and
// the reference interpreter.
type Divergence struct {
	Seed   int64
	Caches bool
	Model  string
	// Field names what diverged: "exit", "retired", "mem", "trace",
	// "x<N>", "f<N>", or "status" (the model failed to exit at all).
	Field string
	Got   string
	Want  string
	// FirstStep/FirstPC/FirstInst localize the first committed
	// instruction at which the model's trace departs from the
	// reference's (-1 when the traces agree or localization was not run).
	FirstStep int
	FirstPC   uint32
	FirstInst string
}

func (d Divergence) String() string {
	s := fmt.Sprintf("seed %d caches=%v %s: %s diverged: got %s want %s",
		d.Seed, d.Caches, d.Model, d.Field, d.Got, d.Want)
	if d.FirstStep >= 0 {
		s += fmt.Sprintf(" (first divergent commit: step %d pc %#x %s)", d.FirstStep, d.FirstPC, d.FirstInst)
	}
	return s
}

// LockstepResult is the outcome of one program across all executors.
type LockstepResult struct {
	Ref         *Result
	Models      []*Result
	Divergences []Divergence
}

// RunLockstep executes prog on the reference interpreter and every CPU
// model, diffing each model's final architectural state and trace hash
// against the reference. Any mismatch is localized to the first divergent
// committed instruction.
func RunLockstep(prog *isa.Program, caches bool) (*LockstepResult, error) {
	ref, err := RunRef(prog, nil)
	if err != nil {
		return nil, err
	}
	out := &LockstepResult{Ref: ref}
	for _, model := range Models {
		res, err := RunModel(model, prog, caches, nil)
		if err != nil {
			out.Divergences = append(out.Divergences, Divergence{
				Model: model, Field: "status", Got: err.Error(), Want: "clean exit", FirstStep: -1,
			})
			continue
		}
		out.Models = append(out.Models, res)
		divs := diffResults(ref, res)
		if len(divs) > 0 {
			step, pc, inst := localize(prog, model, caches)
			for i := range divs {
				divs[i].FirstStep, divs[i].FirstPC, divs[i].FirstInst = step, pc, inst
				divs[i].Caches = caches
			}
			out.Divergences = append(out.Divergences, divs...)
		}
	}
	return out, nil
}

// diffResults compares one model result against the reference.
func diffResults(ref, got *Result) []Divergence {
	var divs []Divergence
	add := func(field, g, w string) {
		divs = append(divs, Divergence{Model: got.Model, Field: field, Got: g, Want: w, FirstStep: -1})
	}
	if got.ExitCode != ref.ExitCode {
		add("exit", fmt.Sprintf("%#x", got.ExitCode), fmt.Sprintf("%#x", ref.ExitCode))
	}
	if got.Retired != ref.Retired {
		add("retired", fmt.Sprint(got.Retired), fmt.Sprint(ref.Retired))
	}
	if got.MemSum != ref.MemSum {
		add("mem", fmt.Sprintf("%#x", got.MemSum), fmt.Sprintf("%#x", ref.MemSum))
	}
	if got.TraceHash != ref.TraceHash {
		add("trace", fmt.Sprintf("%#x", got.TraceHash), fmt.Sprintf("%#x", ref.TraceHash))
	}
	for r := 0; r < 32; r++ {
		if got.Regs[r] != ref.Regs[r] {
			add(fmt.Sprintf("x%d", r), fmt.Sprintf("%#x", got.Regs[r]), fmt.Sprintf("%#x", ref.Regs[r]))
		}
		if got.FRegs[r] != ref.FRegs[r] {
			add(fmt.Sprintf("f%d", r), fmt.Sprintf("%#x", got.FRegs[r]), fmt.Sprintf("%#x", ref.FRegs[r]))
		}
	}
	return divs
}

// commitRecord is one committed instruction in a recorded trace.
type commitRecord struct {
	pc uint32
	in isa.Inst
}

// localize re-runs the reference with a recorder and the model with a
// comparing hook, returning the first committed instruction at which the
// streams differ (step, reference pc, disassembly). Returns step -1 when
// the streams agree (the divergence is then in post-exit state only).
func localize(prog *isa.Program, model string, caches bool) (int, uint32, string) {
	var trace []commitRecord
	if _, err := RunRef(prog, func(pc uint32, in isa.Inst) {
		trace = append(trace, commitRecord{pc, in})
	}); err != nil {
		return -1, 0, ""
	}
	step, firstPC, firstInst := -1, uint32(0), ""
	idx := 0
	_, err := RunModel(model, prog, caches, func(pc uint32, in isa.Inst) {
		if step >= 0 {
			return
		}
		if idx >= len(trace) || trace[idx].pc != pc || trace[idx].in != in {
			step = idx
			firstPC = pc
			firstInst = in.String()
		}
		idx++
	})
	if err != nil && step < 0 {
		return -1, 0, ""
	}
	if step < 0 && idx < len(trace) {
		// Model committed a prefix of the reference trace.
		step, firstPC, firstInst = idx, trace[idx].pc, trace[idx].in.String()
	}
	return step, firstPC, firstInst
}
