package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// litStatDump renders a litmus run's registry deterministically.
func litStatDump(r *LitmusResult) string {
	var b strings.Builder
	for _, name := range r.Stats.Names() {
		fmt.Fprintf(&b, "%s = %v\n", name, r.Stats.Get(name))
	}
	return b.String()
}

// TestLitmusSCReference hand-checks the SC interpreter on the classic
// shapes: the textbook-forbidden outcomes must be outside the allowed set
// and the textbook-allowed ones inside it.
func TestLitmusSCReference(t *testing.T) {
	mp := [][]litOp{
		{{store: true, loc: 0, val: 1}, {store: true, loc: 1, val: 1}},
		{{loc: 1, slot: 0}, {loc: 0, slot: 1}},
	}
	got := scOutcomes(mp)
	want := map[uint32]bool{0x00: true, 0x10: true, 0x11: true}
	if len(got) != len(want) {
		t.Fatalf("mp allowed = %v", got)
	}
	for o := range want {
		if !got[o] {
			t.Errorf("mp: SC outcome %#x missing", o)
		}
	}
	if got[0x01] {
		t.Error("mp: relaxed outcome r_y=1,r_x=0 admitted by the SC reference")
	}

	sb := [][]litOp{
		{{store: true, loc: 0, val: 1}, {loc: 1, slot: 0}},
		{{store: true, loc: 1, val: 1}, {loc: 0, slot: 1}},
	}
	if got := scOutcomes(sb); got[0x00] {
		t.Error("sb: both-zero outcome admitted by the SC reference")
	} else if !got[0x11] || !got[0x01] || !got[0x10] {
		t.Errorf("sb allowed = %v", got)
	}

	iriw := [][]litOp{
		{{store: true, loc: 0, val: 1}},
		{{store: true, loc: 1, val: 1}},
		{{loc: 0, slot: 0}, {loc: 1, slot: 1}},
		{{loc: 1, slot: 2}, {loc: 0, slot: 3}},
	}
	if got := scOutcomes(iriw); got[0x0101] {
		t.Error("iriw: readers disagreeing on the store order admitted by the SC reference")
	} else if !got[0x1111] {
		t.Errorf("iriw: all-ones outcome missing from %v", got)
	}
}

// TestLitmusGenerateDeterministic pins the generator: the same seed and
// core count must yield byte-identical source and the same allowed set, so
// any battery failure reproduces from its seed alone.
func TestLitmusGenerateDeterministic(t *testing.T) {
	for _, cores := range []int{2, 4} {
		a := GenLitmus(1234, cores)
		b := GenLitmus(1234, cores)
		if a.Src != b.Src {
			t.Fatalf("cores=%d: source not deterministic", cores)
		}
		if fmt.Sprintf("%#x", a.AllowedList()) != fmt.Sprintf("%#x", b.AllowedList()) {
			t.Fatalf("cores=%d: allowed set not deterministic", cores)
		}
		if len(a.Allowed) == 0 {
			t.Fatalf("cores=%d: empty allowed set", cores)
		}
	}
}

// TestLitmusBattery is the multicore acceptance gate: generated litmus
// programs across every shape, run on 2- and 4-core guests, must only ever
// exhibit SC-allowed outcomes and must pass the coherence stat invariants
// and the directory's structural audit. Atomic and timing cover the full
// seed range; the pipelined models sample it (they are ~10x slower and
// exercise the same coherence machinery through the same ports).
func TestLitmusBattery(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	const group = 25
	for start := 0; start < seeds; start += group {
		start, end := start, start+group
		if end > seeds {
			end = seeds
		}
		t.Run(fmt.Sprintf("seeds_%d_%d", start, end-1), func(t *testing.T) {
			t.Parallel()
			for seed := start; seed < end; seed++ {
				for _, cores := range []int{2, 4} {
					lt := GenLitmus(int64(seed), cores)
					models := []string{"atomic", "timing"}
					if seed%8 == 0 {
						models = Models
					}
					for _, model := range models {
						r, err := RunLitmus(lt, model, cores)
						if err != nil {
							t.Fatalf("seed %d cores=%d %s: %v", seed, cores, model, err)
						}
						for _, v := range r.Violations {
							t.Error(v)
						}
						if !r.OK() {
							path, werr := WriteLitmusRepro(lt, model, cores, t.TempDir())
							t.Fatalf("reproducer written to %s (write err: %v)\n%s", path, werr, lt.Src)
						}
					}
				}
			}
		})
	}
}

// TestLitmusDeterministicAndSharded pins the multicore determinism
// contract on the litmus rig: repeated runs are bit-identical (outcome,
// ticks, and the full statistics dump), and a sharded event queue changes
// none of it.
func TestLitmusDeterministicAndSharded(t *testing.T) {
	for _, seed := range []int64{3, 17, 64} {
		for _, cores := range []int{2, 4} {
			lt := GenLitmus(seed, cores)
			for _, model := range Models {
				serial, err := RunLitmus(lt, model, cores)
				if err != nil {
					t.Fatalf("seed %d cores=%d %s: %v", seed, cores, model, err)
				}
				again, err := RunLitmus(lt, model, cores)
				if err != nil {
					t.Fatal(err)
				}
				sharded, err := RunLitmusSharded(lt, model, cores, 2)
				if err != nil {
					t.Fatal(err)
				}
				// 1+cores un-fuses every extra core domain onto its own
				// affine shard (the widest per-core layout for this guest).
				perCore, err := RunLitmusSharded(lt, model, cores, 1+cores)
				if err != nil {
					t.Fatal(err)
				}
				for run, r := range map[string]*LitmusResult{
					"rerun": again, "shards=2": sharded,
					fmt.Sprintf("shards=%d", 1+cores): perCore,
				} {
					if r.Outcome != serial.Outcome || r.Ticks != serial.Ticks {
						t.Errorf("seed %d cores=%d %s %s: outcome/ticks %#x@%d != serial %#x@%d",
							seed, cores, model, run, r.Outcome, r.Ticks, serial.Outcome, serial.Ticks)
					}
					if d, s := litStatDump(r), litStatDump(serial); d != s {
						t.Errorf("seed %d cores=%d %s %s: stats diverge: %s",
							seed, cores, model, run, firstStatDiff(d, s))
					}
				}
			}
		}
	}
}

// TestLitmusReproWriter plants a violation (an artificially emptied allowed
// set) and checks the writer minimizes and records a replayable reproducer.
func TestLitmusReproWriter(t *testing.T) {
	lt := GenLitmus(5, 2)
	lt.Allowed = map[uint32]bool{} // every outcome now "violates"
	dir := t.TempDir()
	path, err := WriteLitmusRepro(lt, "atomic", 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.HasPrefix(body, "# litmus reproducer") {
		t.Fatalf("missing header:\n%s", body)
	}
	if !strings.Contains(body, "seed: 5") || !strings.Contains(body, "cores: 2") {
		t.Fatalf("header lost the regeneration coordinates:\n%s", body)
	}
	if len(body) >= len(lt.Src)+300 {
		t.Errorf("ddmin did not shrink the program: %d bytes vs %d source", len(body), len(lt.Src))
	}
}

// TestLitmusReproReplay regenerates every checked-in litmus reproducer
// from the seed and core count in its header and re-runs the full check:
// once the underlying bug is fixed the file becomes a pinned regression.
func TestLitmusReproReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro", "litmus_*.s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var shape, model string
			var seed int64
			var cores int
			for _, line := range strings.Split(string(data), "\n") {
				if _, err := fmt.Sscanf(line, "# shape: %s seed: %d model: %s cores: %d",
					&shape, &seed, &model, &cores); err == nil {
					break
				}
			}
			if cores == 0 {
				t.Fatalf("no regeneration header in %s", file)
			}
			lt := GenLitmus(seed, cores)
			r, err := RunLitmus(lt, model, cores)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range r.Violations {
				t.Errorf("still violating: %s", v)
			}
		})
	}
}
