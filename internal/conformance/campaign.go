package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// CampaignConfig drives a randomized conformance campaign.
type CampaignConfig struct {
	// Seeds is how many generated programs to run (each on every model).
	Seeds int
	// StartSeed is the first generator seed; program i uses StartSeed+i.
	StartSeed int64
	// Jobs is the worker parallelism (0 = GOMAXPROCS). Results are
	// aggregated in seed order regardless of Jobs, so campaign output is
	// deterministic.
	Jobs int
	// Blocks/Fuel forward to GenConfig (0 = generator defaults).
	Blocks int
	Fuel   int
	// ReproDir, when non-empty, receives a minimized reproducer source
	// file for each divergent seed (at most MaxRepros of them).
	ReproDir string
	// MaxRepros caps reproducer files written (0 = 5).
	MaxRepros int
}

// SeedReport is the outcome of one generated program across all models.
type SeedReport struct {
	Seed        int64
	Caches      bool
	Ops         map[isa.Op]bool
	Retired     uint64
	Ticks       map[string]sim.Tick
	Divergences []Divergence
	Violations  []string
	// Err reports a harness-level failure (generator emitted
	// unassemblable code, or the reference did not terminate).
	Err error
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Programs    int
	Models      int
	Divergences []Divergence
	Violations  []string
	Errors      []string
	// Uncovered lists opcodes never emitted across the whole corpus.
	Uncovered []string
	// ReproFiles lists written reproducer paths.
	ReproFiles []string
	// Seeds holds every per-seed report, in seed order.
	Seeds []SeedReport
}

// Failed reports whether the campaign found any conformance failure.
func (r *CampaignResult) Failed() bool {
	return len(r.Divergences) > 0 || len(r.Violations) > 0 || len(r.Errors) > 0
}

// Summary renders a one-screen campaign summary.
func (r *CampaignResult) Summary() string {
	s := fmt.Sprintf("conformance: %d programs x %d models: %d divergences, %d invariant violations, %d errors\n",
		r.Programs, r.Models, len(r.Divergences), len(r.Violations), len(r.Errors))
	if len(r.Uncovered) > 0 {
		s += fmt.Sprintf("opcodes never emitted: %v\n", r.Uncovered)
	} else {
		s += "opcode coverage: full table\n"
	}
	for _, d := range r.Divergences {
		s += "  " + d.String() + "\n"
	}
	for _, v := range r.Violations {
		s += "  invariant: " + v + "\n"
	}
	for _, e := range r.Errors {
		s += "  error: " + e + "\n"
	}
	for _, f := range r.ReproFiles {
		s += "  repro: " + f + "\n"
	}
	return s
}

// runSeed generates and lockstep-runs one program.
func runSeed(cfg CampaignConfig, seed int64) SeedReport {
	rep := SeedReport{Seed: seed, Caches: seed%2 == 0, Ticks: map[string]sim.Tick{}}
	g := Generate(GenConfig{Seed: seed, Blocks: cfg.Blocks, Fuel: cfg.Fuel})
	rep.Ops = g.Ops
	prog, err := isa.Assemble(g.Src)
	if err != nil {
		rep.Err = fmt.Errorf("seed %d: assemble: %w", seed, err)
		return rep
	}
	ls, err := RunLockstep(prog, rep.Caches)
	if err != nil {
		rep.Err = fmt.Errorf("seed %d: %w", seed, err)
		return rep
	}
	rep.Retired = ls.Ref.Retired
	for i := range ls.Divergences {
		ls.Divergences[i].Seed = seed
	}
	rep.Divergences = ls.Divergences
	for _, m := range ls.Models {
		rep.Ticks[m.Model] = m.Ticks
		// Atomic resolves every cache access synchronously, so its exit
		// state is fully drained; timing models may exit mid-flight.
		drained := m.Model == "atomic"
		for _, v := range CheckStats(m.Stats, drained) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("seed %d caches=%v %s: %s", seed, rep.Caches, m.Model, v))
		}
	}
	// Cross-model tick orderings that hold by construction: the blocking
	// Timing CPU can never beat the Atomic CPU (same latencies, paid
	// sequentially) nor the pipelined Minor CPU. O3 is intentionally NOT
	// ordered against Atomic: an 8-wide machine can retire above 1 IPC.
	if tT, tA := rep.Ticks["timing"], rep.Ticks["atomic"]; tT > 0 && tA > 0 && tT < tA {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("seed %d caches=%v: ticks(timing)=%d < ticks(atomic)=%d", seed, rep.Caches, tT, tA))
	}
	if tT, tM := rep.Ticks["timing"], rep.Ticks["minor"]; tT > 0 && tM > 0 && tT < tM {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("seed %d caches=%v: ticks(timing)=%d < ticks(minor)=%d", seed, rep.Caches, tT, tM))
	}
	return rep
}

// writeRepro minimizes a divergent seed's program and writes it under dir.
func writeRepro(cfg CampaignConfig, rep SeedReport, dir string) (string, error) {
	g := Generate(GenConfig{Seed: rep.Seed, Blocks: cfg.Blocks, Fuel: cfg.Fuel})
	stillFails := func(src string) bool {
		prog, err := isa.Assemble(src)
		if err != nil {
			return false
		}
		ls, err := RunLockstep(prog, rep.Caches)
		return err == nil && len(ls.Divergences) > 0
	}
	min := Minimize(g.Src, stillFails, 200)
	header := fmt.Sprintf(
		"# conformance reproducer\n# seed: %d\n# caches: %v\n# regenerate: go run ./cmd/conformance -seeds 1 -start %d\n",
		rep.Seed, rep.Caches, rep.Seed)
	for _, d := range rep.Divergences {
		header += "# " + d.String() + "\n"
	}
	return writeReproFile(dir, fmt.Sprintf("seed_%d.s", rep.Seed), header+min+"\n")
}

// writeReproFile writes one reproducer source under dir, creating it as
// needed. Shared by the campaign and litmus repro writers.
func writeReproFile(dir, name, content string) (string, error) {
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// RunCampaign runs cfg.Seeds generated programs through the lockstep
// runner and the invariant walker, in parallel, aggregating results in
// deterministic seed order.
func RunCampaign(cfg CampaignConfig) *CampaignResult {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRepros <= 0 {
		cfg.MaxRepros = 5
	}

	reports := make([]SeedReport, cfg.Seeds)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reports[i] = runSeed(cfg, cfg.StartSeed+int64(i))
			}
		}()
	}
	for i := 0; i < cfg.Seeds; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	out := &CampaignResult{Programs: cfg.Seeds, Models: len(Models), Seeds: reports}
	covered := make(map[isa.Op]bool)
	repros := 0
	for _, rep := range reports {
		//lint:deterministic pure set union; Uncovered is sorted before reporting
		for op := range rep.Ops {
			covered[op] = true
		}
		out.Divergences = append(out.Divergences, rep.Divergences...)
		out.Violations = append(out.Violations, rep.Violations...)
		if rep.Err != nil {
			out.Errors = append(out.Errors, rep.Err.Error())
		}
		if len(rep.Divergences) > 0 && cfg.ReproDir != "" && repros < cfg.MaxRepros {
			if path, err := writeRepro(cfg, rep, cfg.ReproDir); err == nil {
				out.ReproFiles = append(out.ReproFiles, path)
				repros++
			} else {
				out.Errors = append(out.Errors, fmt.Sprintf("seed %d: write repro: %v", rep.Seed, err))
			}
		}
	}
	for _, op := range isa.Opcodes() {
		if !covered[op] {
			out.Uncovered = append(out.Uncovered, op.Name())
		}
	}
	sort.Strings(out.Uncovered)
	return out
}
