package conformance

import (
	"testing"

	"gem5prof/internal/isa"
)

// FuzzConformance lets the Go fuzzer drive the program generator's seed
// space directly: any input that produces a cross-model divergence or an
// invariant violation is a crasher. The corpus under
// testdata/fuzz/FuzzConformance replays during plain `go test` as a
// regression suite.
func FuzzConformance(f *testing.F) {
	f.Add(int64(1), byte(0), false)
	f.Add(int64(42), byte(3), true)
	f.Add(int64(-9001), byte(7), false)
	f.Fuzz(func(t *testing.T, seed int64, blocks byte, caches bool) {
		g := Generate(GenConfig{Seed: seed, Blocks: 2 + int(blocks%6)})
		prog, err := isa.Assemble(g.Src)
		if err != nil {
			t.Fatalf("generator emitted unassemblable source: %v\n%s", err, g.Src)
		}
		ls, err := RunLockstep(prog, caches)
		if err != nil {
			t.Fatalf("lockstep: %v", err)
		}
		for _, d := range ls.Divergences {
			t.Errorf("divergence: %s", d.String())
		}
		for _, m := range ls.Models {
			for _, v := range CheckStats(m.Stats, m.Model == "atomic") {
				t.Errorf("%s: invariant: %s", m.Model, v)
			}
		}
	})
}
