package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// TestCampaignQuick is the acceptance gate: 500 generated programs, each
// run on all four CPU models plus the reference interpreter, must show
// zero architectural divergence and zero invariant violations, and the
// corpus must cover the full opcode table except wfi (which parks the
// core until an asynchronous interrupt — interrupt timing legitimately
// differs across models, so the generator excludes it by design).
func TestCampaignQuick(t *testing.T) {
	res := RunCampaign(CampaignConfig{Seeds: 500, StartSeed: 1, ReproDir: t.TempDir()})
	if res.Failed() {
		t.Fatalf("campaign failed:\n%s", res.Summary())
	}
	for _, name := range res.Uncovered {
		if name != "wfi" {
			t.Errorf("opcode %q never emitted across the corpus", name)
		}
	}
	if len(res.Uncovered) > 1 {
		t.Errorf("uncovered opcodes: %v", res.Uncovered)
	}
}

// TestLockstepFixedSeeds pins the fixed seeds the old
// cpu.TestDifferentialRandomPrograms used, now folded into the lockstep
// runner: both cache configurations, all models, full-state diffing
// instead of only the a0 exit value.
func TestLockstepFixedSeeds(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := Generate(GenConfig{Seed: seed})
			prog, err := isa.Assemble(g.Src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, g.Src)
			}
			for _, caches := range []bool{false, true} {
				ls, err := RunLockstep(prog, caches)
				if err != nil {
					t.Fatalf("caches=%v: %v", caches, err)
				}
				for _, d := range ls.Divergences {
					t.Errorf("caches=%v: %s", caches, d.String())
				}
			}
		})
	}
}

// TestGenerateDeterministic pins the generator: the same seed must yield
// byte-identical source (so any failure is reproducible from its seed
// alone), and every emitted instruction must encode and decode cleanly.
func TestGenerateDeterministic(t *testing.T) {
	g1 := Generate(GenConfig{Seed: 7})
	g2 := Generate(GenConfig{Seed: 7})
	if g1.Src != g2.Src {
		t.Fatal("generator nondeterministic for equal seeds")
	}
	if g3 := Generate(GenConfig{Seed: 8}); g3.Src == g1.Src {
		t.Fatal("distinct seeds produced identical programs")
	}
	prog, err := isa.Assemble(g1.Src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if prog.Entry == 0 || len(prog.Data) == 0 {
		t.Fatal("empty program")
	}
	for op := range g1.Ops {
		if !op.Valid() {
			t.Fatalf("generator recorded invalid opcode %d", op)
		}
	}
}

// TestGeneratedProgramsRespectFuel verifies the termination-fuel scheme:
// the reference interpreter must finish every generated program within
// its dynamic budget (the whole point of the fuel accounting).
func TestGeneratedProgramsRespectFuel(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		fuel := 5000
		g := Generate(GenConfig{Seed: seed, Fuel: fuel})
		prog, err := isa.Assemble(g.Src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := RunRef(prog, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ref.Retired > uint64(fuel) {
			t.Errorf("seed %d: retired %d > fuel %d", seed, ref.Retired, fuel)
		}
	}
}

// TestRealWorkloadInvariants runs real SE workloads under every CPU model
// and checks the same invariant catalog the random campaign uses, plus
// the cross-model metamorphic property the paper's methodology rests on:
// the committed instruction count is model-independent.
func TestRealWorkloadInvariants(t *testing.T) {
	for _, workload := range []string{"sieve", "dedup"} {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			insts := map[core.CPUModel]uint64{}
			for _, model := range core.AllCPUModels {
				res, err := core.RunGuest(core.GuestConfig{
					CPU: model, Mode: core.SE, Workload: workload, Scale: 1024, GuestTLBs: true,
				})
				if err != nil {
					t.Fatalf("%s: %v", model, err)
				}
				if !res.ChecksumOK {
					t.Fatalf("%s: checksum mismatch: got %#x want %#x", model, res.ExitCode, res.Expected)
				}
				insts[model] = res.Insts
				for _, v := range CheckStats(res.Stats, model == core.Atomic) {
					t.Errorf("%s: invariant: %s", model, v)
				}
			}
			for _, model := range core.AllCPUModels {
				if insts[model] != insts[core.Atomic] {
					t.Errorf("committed insts diverge: %s=%d atomic=%d", model, insts[model], insts[core.Atomic])
				}
			}
		})
	}
}

// TestReproReplay re-runs every checked-in reproducer under the lockstep
// runner. Reproducers record historical divergences; once the underlying
// bug is fixed they become the regression corpus and must stay clean.
func TestReproReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		file := file
		if strings.HasPrefix(filepath.Base(file), "litmus_") {
			continue // multi-threaded; replayed by TestLitmusReproReplay
		}
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := isa.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			for _, caches := range []bool{false, true} {
				ls, err := RunLockstep(prog, caches)
				if err != nil {
					t.Fatalf("caches=%v: %v", caches, err)
				}
				for _, d := range ls.Divergences {
					t.Errorf("caches=%v: %s", caches, d.String())
				}
			}
		})
	}
}

// TestMinimize exercises the ddmin machinery against a synthetic failure
// predicate, independent of any real model bug.
func TestMinimize(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 40; i++ {
		if i == 17 || i == 31 {
			fmt.Fprintf(&src, "needle %d\n", i)
		} else {
			fmt.Fprintf(&src, "filler %d\n", i)
		}
	}
	fails := func(s string) bool {
		return strings.Count(s, "needle") == 2
	}
	min := Minimize(src.String(), fails, 10_000)
	lines := 0
	for _, l := range strings.Split(min, "\n") {
		if l != "" {
			lines++
		}
	}
	if lines != 2 || strings.Count(min, "needle") != 2 {
		t.Fatalf("minimized to %d lines:\n%s", lines, min)
	}
}

// TestInvariantWalkerDetects builds registries with planted violations and
// checks the walker flags each one (and stays quiet on a clean registry).
func TestInvariantWalkerDetects(t *testing.T) {
	clean := sim.NewRegistry()
	a := clean.Counter("l1.accesses", "")
	h := clean.Counter("l1.hits", "")
	clean.Counter("l1.misses", "")
	clean.Counter("l1.mshrHits", "")
	a.Addn(10)
	h.Addn(10)
	if v := CheckStats(clean, true); len(v) != 0 {
		t.Fatalf("clean registry flagged: %v", v)
	}

	over := sim.NewRegistry()
	oa := over.Counter("l1.accesses", "")
	oh := over.Counter("l1.hits", "")
	over.Counter("l1.misses", "")
	over.Counter("l1.mshrHits", "")
	oa.Addn(5)
	oh.Addn(9)
	if v := CheckStats(over, false); len(v) != 1 {
		t.Fatalf("over-resolved cache not flagged: %v", v)
	}

	undrained := sim.NewRegistry()
	ua := undrained.Counter("l1.accesses", "")
	uh := undrained.Counter("l1.hits", "")
	undrained.Counter("l1.misses", "")
	undrained.Counter("l1.mshrHits", "")
	ua.Addn(9)
	uh.Addn(5)
	if v := CheckStats(undrained, false); len(v) != 0 {
		t.Fatalf("in-flight accesses flagged while undrained: %v", v)
	}
	if v := CheckStats(undrained, true); len(v) != 1 {
		t.Fatalf("unresolved accesses not flagged while drained: %v", v)
	}

	tlb := sim.NewRegistry()
	tt := tlb.Counter("itlb.translations", "")
	th := tlb.Counter("itlb.hits", "")
	tlb.Counter("itlb.misses", "")
	tt.Addn(4)
	th.Addn(3) // hits+misses = 3 != 4
	if v := CheckStats(tlb, true); len(v) != 1 {
		t.Fatalf("TLB imbalance not flagged: %v", v)
	}

	cpu := sim.NewRegistry()
	ci := cpu.Counter("cpu0.committedInsts", "")
	cb := cpu.Counter("cpu0.branches", "")
	ci.Addn(5)
	cb.Addn(9)
	if v := CheckStats(cpu, true); len(v) != 1 {
		t.Fatalf("class overcount not flagged: %v", v)
	}

	sc := sim.NewRegistry()
	bad := sc.Scalar("host.speedup", "")
	bad.Set(1)
	bad.Set(0)
	bad.Add(1.0 / 1.0)
	badder := sc.Scalar("host.nan", "")
	badder.Set(0)
	badder.Add(1)
	badder.Set(mustNaN())
	if v := CheckStats(sc, true); len(v) != 1 {
		t.Fatalf("NaN scalar not flagged: %v", v)
	}
}

func mustNaN() float64 {
	zero := 0.0
	return zero / zero
}

// TestTraceHashOrderSensitivity pins that the trace hash distinguishes
// both instruction content and commit order.
func TestTraceHashOrderSensitivity(t *testing.T) {
	a := isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 4}
	b := isa.Inst{Op: isa.OpAddi, Rd: 2, Imm: 4}
	h1 := newTraceHash()
	h1.mix(0x1000, a)
	h1.mix(0x1004, b)
	h2 := newTraceHash()
	h2.mix(0x1000, b)
	h2.mix(0x1004, a)
	if h1 == h2 {
		t.Fatal("trace hash insensitive to commit order")
	}
	h3 := newTraceHash()
	h3.mix(0x1000, a)
	h3.mix(0x1004, b)
	if h1 != h3 {
		t.Fatal("trace hash nondeterministic")
	}
}
