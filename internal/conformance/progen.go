// Package conformance cross-checks the four guest CPU models against a
// bare reference interpreter on randomly generated KISA programs, and
// checks metamorphic invariants over the statistics every run produces.
//
// The paper's methodology depends on the four CPU models (Atomic, Timing,
// Minor, O3) being architecturally interchangeable: fast-forward with one,
// measure with another. This package is the subsystem that earns that
// assumption: progen emits seeded random programs guaranteed to terminate,
// the lockstep runner executes each on every model and diffs final
// architectural state plus a per-commit trace hash, and the invariant
// walker checks stat conservation laws (cache accesses == hits + misses +
// mshrHits, TLB translations == hits + misses, ...) that must hold on any
// run, random or real.
package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"gem5prof/internal/isa"
)

// GenConfig seeds one generated program.
type GenConfig struct {
	// Seed drives every random choice; the same seed always yields the
	// same source text.
	Seed int64
	// Blocks is the number of top-level code blocks (0 = seed-derived,
	// 3..8).
	Blocks int
	// Fuel bounds the program's dynamic instruction count: emission stops
	// once the worst-case executed-instruction budget is spent (0 =
	// DefaultFuel). Together with the loop discipline below it guarantees
	// termination.
	Fuel int
}

// DefaultFuel is the default worst-case dynamic instruction budget.
const DefaultFuel = 20000

// ScratchBytes is the size of the load/store arena; every generated memory
// access lands inside it, naturally aligned.
const ScratchBytes = 512

// Generated is one generator output.
type Generated struct {
	Cfg GenConfig
	// Src is the assembly source.
	Src string
	// Ops records every opcode the program encodes (including via pseudo
	// expansion), for corpus-level coverage accounting.
	Ops map[isa.Op]bool
}

// Register discipline. Generated code computes only in pool registers so
// the structural registers below are never clobbered:
//
//	x2  (sp)   stack pointer, set once (unused by generated code)
//	x10 (a0)   exit value accumulator
//	x17 (a7)   syscall number for the final ecall
//	x26 (s10)  float literal pool base
//	x27 (s11)  scratch arena base
//	x29 (t4)   jump/address temporary
//	x30 (t5)   inner loop counter
//	x31 (t6)   outer loop counter
var intPool = []uint8{5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 18, 19, 20, 21, 22, 23, 24, 25}

// fpPoolSize is how many float registers participate (f0..f15).
const fpPoolSize = 16

// fdataDoubles is how many float64 literals the fdata section holds.
const fdataDoubles = 8

// gen carries the generator state for one program.
type gen struct {
	rng   *rand.Rand
	b     strings.Builder
	label int
	fuel  int
	mult  int // product of enclosing loop trip counts
	depth int // loop nesting depth
	used  map[isa.Op]bool

	intOps []isa.Op // straight-line integer compute ops
	fpOps  []isa.Op // float compute/compare/convert ops
	loads  []isa.Op
	stores []isa.Op
}

// Generate emits one random, structurally valid, guaranteed-terminating
// KISA program for cfg.
func Generate(cfg GenConfig) Generated {
	if cfg.Fuel <= 0 {
		cfg.Fuel = DefaultFuel
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		fuel: cfg.Fuel,
		mult: 1,
		used: make(map[isa.Op]bool),
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 3 + g.rng.Intn(6)
	}
	g.classify()
	g.header()
	for b := 0; b < cfg.Blocks && g.fuel > 64; b++ {
		g.block()
	}
	g.coverageTail()
	g.footer()
	return Generated{Cfg: cfg, Src: g.b.String(), Ops: g.used}
}

// classify partitions the opcode table (via the exported metadata) into
// the operand shapes the emitter understands, so new opcodes are picked up
// automatically.
func (g *gen) classify() {
	for _, op := range isa.Opcodes() {
		m := op.Meta()
		switch {
		case m.IsLoad:
			g.loads = append(g.loads, op)
		case m.IsStore:
			g.stores = append(g.stores, op)
		case m.IsBranch, m.IsJump, m.IsSystem:
			// Branches, jumps, and system ops are emitted structurally
			// (with labels / CSR discipline), not as straight-line picks.
		case m.FpRd || m.FpRs1 || m.FpRs2:
			g.fpOps = append(g.fpOps, op)
		case m.WritesRd:
			g.intOps = append(g.intOps, op)
		}
	}
	// fcvt.w.d writes an integer register but reads a float: it lives in
	// the fp emitter's world.
	for i, op := range g.intOps {
		if op == isa.OpFcvtWD {
			g.intOps = append(g.intOps[:i], g.intOps[i+1:]...)
			break
		}
	}
	g.fpOps = append(g.fpOps, isa.OpFcvtWD)
}

// line appends one raw source line.
func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// inst appends one real instruction line, charging fuel under the current
// loop multiplier and recording opcode coverage.
func (g *gen) inst(op isa.Op, format string, args ...any) {
	g.used[op] = true
	g.fuel -= g.mult
	g.line("\t"+format, args...)
}

// li emits the li pseudo-instruction (expands to lui+ori).
func (g *gen) li(reg string, val uint32) {
	g.used[isa.OpLui] = true
	g.used[isa.OpOri] = true
	g.fuel -= 2 * g.mult
	g.line("\tli %s, %#x", reg, val)
}

// la emits the la pseudo-instruction (expands to lui+ori).
func (g *gen) la(reg, label string) {
	g.used[isa.OpLui] = true
	g.used[isa.OpOri] = true
	g.fuel -= 2 * g.mult
	g.line("\tla %s, %s", reg, label)
}

func (g *gen) newLabel(kind string) string {
	g.label++
	return fmt.Sprintf("L%s%d", kind, g.label)
}

func (g *gen) reg() uint8  { return intPool[g.rng.Intn(len(intPool))] }
func (g *gen) freg() uint8 { return uint8(g.rng.Intn(fpPoolSize)) }

// header seeds the register files so generated computation starts from
// seed-dependent state.
func (g *gen) header() {
	g.line("# conformance progen seed program")
	g.line("_start:")
	g.li("sp", 0xF00000)
	g.la("s11", "scratch")
	g.la("s10", "fdata")
	for _, r := range intPool {
		g.li(fmt.Sprintf("x%d", r), g.rng.Uint32())
	}
	for i := 0; i < fpPoolSize; i++ {
		g.inst(isa.OpFld, "fld f%d, %d(s10)", i, (i%fdataDoubles)*8)
	}
}

// block emits one random top-level code block.
func (g *gen) block() {
	switch g.rng.Intn(7) {
	case 0, 1:
		g.aluBlock(4 + g.rng.Intn(8))
	case 2:
		g.memBlock()
	case 3:
		g.loopBlock()
	case 4:
		g.branchBlock()
	case 5:
		g.jumpBlock()
	case 6:
		g.fpBlock(2 + g.rng.Intn(5))
	}
	if g.rng.Intn(3) == 0 {
		g.csrBlock()
	}
}

// aluBlock emits n straight-line integer compute instructions drawn from
// the opcode metadata.
func (g *gen) aluBlock(n int) {
	for i := 0; i < n; i++ {
		g.emitIntOp(g.intOps[g.rng.Intn(len(g.intOps))])
	}
}

// emitIntOp emits one integer compute instruction with random operands.
func (g *gen) emitIntOp(op isa.Op) {
	m := op.Meta()
	switch m.Format {
	case isa.FmtR:
		g.inst(op, "%s x%d, x%d, x%d", m.Name, g.reg(), g.reg(), g.reg())
	case isa.FmtI:
		imm := g.rng.Intn(2001) - 1000
		if op == isa.OpSlli || op == isa.OpSrli || op == isa.OpSrai {
			imm = g.rng.Intn(32)
		}
		g.inst(op, "%s x%d, x%d, %d", m.Name, g.reg(), g.reg(), imm)
	case isa.FmtU:
		g.inst(op, "%s x%d, %#x", m.Name, g.reg(), g.rng.Intn(1<<20))
	}
}

// memBlock emits aligned store/load pairs confined to the scratch arena.
func (g *gen) memBlock() {
	for i, n := 0, 1+g.rng.Intn(4); i < n; i++ {
		st := g.stores[g.rng.Intn(len(g.stores))]
		g.emitStore(st)
		ld := g.loads[g.rng.Intn(len(g.loads))]
		g.emitLoad(ld)
	}
}

func (g *gen) scratchOff(size int) int {
	return g.rng.Intn(ScratchBytes/size) * size
}

func (g *gen) emitStore(op isa.Op) {
	m := op.Meta()
	off := g.scratchOff(m.MemSize)
	if m.FpRs2 {
		g.inst(op, "%s f%d, %d(s11)", m.Name, g.freg(), off)
	} else {
		g.inst(op, "%s x%d, %d(s11)", m.Name, g.reg(), off)
	}
}

func (g *gen) emitLoad(op isa.Op) {
	m := op.Meta()
	off := g.scratchOff(m.MemSize)
	if m.FpRd {
		g.inst(op, "%s f%d, %d(s11)", m.Name, g.freg(), off)
	} else {
		g.inst(op, "%s x%d, %d(s11)", m.Name, g.reg(), off)
	}
}

// loopBlock emits a counted down-loop on t6 (outer) or t5 (inner). Trip
// counts are small literal constants and the counter registers are never
// touched by body code, so termination is structural; the fuel charge for
// the body is multiplied by the trip count.
func (g *gen) loopBlock() {
	if g.depth >= 2 {
		g.aluBlock(3)
		return
	}
	counter := "t6"
	if g.depth == 1 {
		counter = "t5"
	}
	trips := 1 + g.rng.Intn(6)
	top := g.newLabel("loop")
	g.li(counter, uint32(trips))
	g.line("%s:", top)
	g.mult *= trips
	g.depth++
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(5) {
		case 0:
			g.emitStore(g.stores[g.rng.Intn(len(g.stores))])
		case 1:
			g.emitLoad(g.loads[g.rng.Intn(len(g.loads))])
		case 2:
			if g.depth < 2 && g.fuel > 256 {
				g.loopBlock()
			} else {
				g.emitIntOp(g.intOps[g.rng.Intn(len(g.intOps))])
			}
		default:
			g.emitIntOp(g.intOps[g.rng.Intn(len(g.intOps))])
		}
	}
	g.depth--
	g.mult /= trips
	g.inst(isa.OpAddi, "addi %s, %s, -1", counter, counter)
	g.inst(isa.OpBne, "bne %s, x0, %s", counter, top)
}

var branchOps = []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu}

// branchBlock emits a forward conditional diamond (both arms forward-only,
// so it cannot loop).
func (g *gen) branchBlock() {
	op := branchOps[g.rng.Intn(len(branchOps))]
	if g.rng.Intn(2) == 0 {
		// Skip-over form.
		skip := g.newLabel("skip")
		g.inst(op, "%s x%d, x%d, %s", op.Meta().Name, g.reg(), g.reg(), skip)
		g.aluBlock(1 + g.rng.Intn(3))
		g.line("%s:", skip)
		return
	}
	// If/else form; the unconditional edge uses j (jal x0).
	els := g.newLabel("else")
	end := g.newLabel("end")
	g.inst(op, "%s x%d, x%d, %s", op.Meta().Name, g.reg(), g.reg(), els)
	g.aluBlock(1 + g.rng.Intn(3))
	g.used[isa.OpJal] = true
	g.fuel -= g.mult
	g.line("\tj %s", end)
	g.line("%s:", els)
	g.aluBlock(1 + g.rng.Intn(3))
	g.line("%s:", end)
}

// jumpBlock emits one forward unconditional control transfer: jal, an
// address-materialized jalr, or a trap-return (mret) whose mepc was just
// planted. All targets are forward labels.
func (g *gen) jumpBlock() {
	target := g.newLabel("jump")
	switch g.rng.Intn(3) {
	case 0:
		g.inst(isa.OpJal, "jal t4, %s", target)
	case 1:
		g.la("t4", target)
		g.inst(isa.OpJalr, "jalr x%d, 0(t4)", g.reg())
	case 2:
		g.la("t4", target)
		g.inst(isa.OpCsrrw, "csrrw x0, 0x341, t4") // mepc
		g.inst(isa.OpMret, "mret")
	}
	g.line("%s:", target)
}

// fpBlock emits n float compute/compare/convert instructions.
func (g *gen) fpBlock(n int) {
	for i := 0; i < n; i++ {
		g.emitFpOp(g.fpOps[g.rng.Intn(len(g.fpOps))])
	}
}

func (g *gen) emitFpOp(op isa.Op) {
	m := op.Meta()
	name := func(fp bool) string {
		if fp {
			return fmt.Sprintf("f%d", g.freg())
		}
		return fmt.Sprintf("x%d", g.reg())
	}
	switch {
	case m.ReadsRs2:
		g.inst(op, "%s %s, %s, %s", m.Name, name(m.FpRd), name(m.FpRs1), name(m.FpRs2))
	case m.ReadsRs1:
		g.inst(op, "%s %s, %s", m.Name, name(m.FpRd), name(m.FpRs1))
	}
}

// csrBlock exercises the CSR ops on mscratch (0x340) only: mstatus would
// toggle interrupt enables and cycle/instret are timing-dependent, all of
// which legitimately differ across CPU models.
func (g *gen) csrBlock() {
	g.inst(isa.OpCsrrw, "csrrw x%d, 0x340, x%d", g.reg(), g.reg())
	g.inst(isa.OpCsrrs, "csrrs x%d, 0x340, x%d", g.reg(), g.reg())
}

// coverageTail appends one safe instance of every opcode the random blocks
// did not emit, so every generated program individually covers the full
// table (minus the exclusions documented in DESIGN.md: wfi parks the core
// until an asynchronous interrupt, and ecall/ebreak terminate — the
// terminator covers one of those two).
func (g *gen) coverageTail() {
	for _, op := range isa.Opcodes() {
		if g.used[op] {
			continue
		}
		m := op.Meta()
		switch {
		case op == isa.OpEcall || op == isa.OpEbreak || op == isa.OpWfi:
			// ecall/ebreak exit; wfi needs an interrupt to ever resume.
		case m.IsLoad:
			g.emitLoad(op)
		case m.IsStore:
			g.emitStore(op)
		case m.IsBranch:
			// Branch to the very next instruction: taken and not-taken
			// agree, so any outcome is safe.
			l := g.newLabel("cov")
			g.inst(op, "%s x%d, x%d, %s", m.Name, g.reg(), g.reg(), l)
			g.line("%s:", l)
		case op == isa.OpJal:
			l := g.newLabel("cov")
			g.inst(op, "jal t4, %s", l)
			g.line("%s:", l)
		case op == isa.OpJalr:
			l := g.newLabel("cov")
			g.la("t4", l)
			g.inst(op, "jalr x%d, 0(t4)", g.reg())
			g.line("%s:", l)
		case op == isa.OpMret:
			l := g.newLabel("cov")
			g.la("t4", l)
			g.inst(isa.OpCsrrw, "csrrw x0, 0x341, t4")
			g.inst(op, "mret")
			g.line("%s:", l)
		case op == isa.OpCsrrw || op == isa.OpCsrrs:
			g.inst(op, "%s x%d, 0x340, x%d", m.Name, g.reg(), g.reg())
		case m.FpRd || m.FpRs1 || m.FpRs2 || op == isa.OpFcvtWD:
			g.emitFpOp(op)
		default:
			g.emitIntOp(op)
		}
	}
}

// footer folds the integer pool into a0 and exits. The terminator
// alternates between ecall and ebreak by seed so both exit opcodes appear
// across a corpus.
func (g *gen) footer() {
	g.li("a0", 0)
	for _, r := range intPool {
		g.inst(isa.OpAdd, "add a0, a0, x%d", r)
		g.inst(isa.OpXor, "xor a0, a0, x%d", r)
	}
	if g.rng.Intn(2) == 0 {
		g.li("a7", 93)
		g.used[isa.OpEcall] = true
		g.line("\tecall")
	} else {
		g.used[isa.OpEbreak] = true
		g.line("\tebreak")
	}
	g.line("scratch:")
	g.line("\t.space %d", ScratchBytes)
	g.line("fdata:")
	for i := 0; i < fdataDoubles; i++ {
		g.line("\t.double %g", g.rng.NormFloat64()*100)
	}
}
