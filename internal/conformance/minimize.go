package conformance

import "strings"

// Minimize shrinks a failing program's source with a line-granular ddmin:
// it repeatedly tries deleting contiguous line chunks (halving the chunk
// size down to single lines) and keeps any deletion under which stillFails
// returns true. stillFails must be a full validity-plus-failure check
// (typically: assembles, the reference terminates, and the lockstep diff
// still reports a divergence) — candidates that break assembly must simply
// return false. maxProbes bounds the total number of stillFails calls so
// minimization cannot dominate a campaign.
func Minimize(src string, stillFails func(string) bool, maxProbes int) string {
	lines := strings.Split(src, "\n")
	probes := 0
	probe := func(cand []string) bool {
		if probes >= maxProbes {
			return false
		}
		probes++
		return stillFails(strings.Join(cand, "\n"))
	}
	// One sweep at a given chunk size; returns whether anything was cut.
	sweep := func(chunk int) bool {
		cut := false
		for start := 0; start < len(lines) && probes < maxProbes; {
			end := start + chunk
			if end > len(lines) {
				end = len(lines)
			}
			cand := make([]string, 0, len(lines)-(end-start))
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[end:]...)
			if probe(cand) {
				lines = cand // keep the cut; the next chunk slid into start
				cut = true
			} else {
				start = end
			}
		}
		return cut
	}
	for chunk := len(lines) / 2; chunk >= 1; chunk /= 2 {
		sweep(chunk)
	}
	// Single-line passes to a fixpoint (a removal can unlock another).
	for sweep(1) && probes < maxProbes {
	}
	return strings.Join(lines, "\n")
}
