package isa

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Program is an assembled KISA image: a single contiguous segment plus an
// entry point and a symbol table.
type Program struct {
	// Base is the load address of Data[0].
	Base uint32
	// Data is the image contents (instructions and initialized data).
	Data []byte
	// Entry is the first PC; the address of "_start" when defined, else Base.
	Entry uint32
	// Symbols maps every label to its address.
	Symbols map[string]uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return len(p.Data) }

// Symbol returns the address of a label, panicking if undefined. It is a
// convenience for tests and workload authors.
func (p *Program) Symbol(name string) uint32 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: undefined symbol %q", name))
	}
	return a
}

// DefaultBase is the load address used when a source omits .org.
const DefaultBase uint32 = 0x1000

// maxSpaceBytes caps a single .space reservation and the total assembled
// image. Guest memories top out at a few tens of MiB, so a larger request
// is a typo (or a fuzzer input) rather than a real program, and rejecting
// it keeps assembly cost proportional to source length.
const maxSpaceBytes = 16 << 20

// Register aliases follow the RISC-V ABI names.
var regAliases = map[string]uint8{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
	"s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.line, e.msg) }

// item is one source statement after pass 1: either an instruction to encode
// or raw bytes.
type item struct {
	line   int
	addr   uint32
	raw    []byte // non-nil for data directives
	mnem   string
	args   []string
	nwords int // words this statement occupies (pseudo expansion)
}

// Assemble translates KISA assembly into a Program. The syntax supports
// labels ("name:"), comments ("#" or ";"), the directives .org .word .byte
// .double .asciz .space .align, and the pseudo-instructions li, la, mv, j,
// call, ret, nop, and halt (ebreak).
func Assemble(src string) (*Program, error) {
	labels := make(map[string]uint32)
	var items []item
	base := uint32(0)
	baseSet := false
	loc := uint32(0)

	fail := func(line int, format string, args ...any) error {
		return &asmError{line: line, msg: fmt.Sprintf(format, args...)}
	}

	// Pass 1: tokenize, expand sizes, assign addresses, collect labels.
	for ln, rawLine := range strings.Split(src, "\n") {
		line := ln + 1
		text := rawLine
		if i := strings.IndexAny(text, "#;"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		for {
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if !isIdent(label) {
				return nil, fail(line, "bad label %q", label)
			}
			if !baseSet {
				base, baseSet = DefaultBase, true
				loc = base
			}
			if _, dup := labels[label]; dup {
				return nil, fail(line, "duplicate label %q", label)
			}
			labels[label] = loc
			text = strings.TrimSpace(text[colon+1:])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		mnem := strings.ToLower(fields[0])
		rest := strings.TrimSpace(text[len(fields[0]):])
		var args []string
		if rest != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}

		if strings.HasPrefix(mnem, ".") {
			it, newLoc, newBase, err := directive(line, mnem, args, rest, loc, base, baseSet)
			if err != nil {
				return nil, err
			}
			if mnem == ".org" {
				base, baseSet, loc = newBase, true, newLoc
				continue
			}
			if !baseSet {
				base, baseSet = DefaultBase, true
				loc = base
			}
			it.addr = loc
			items = append(items, it)
			loc += uint32(len(it.raw))
			if loc-base > maxSpaceBytes {
				return nil, fail(line, "image size %d exceeds the %d-byte cap", loc-base, maxSpaceBytes)
			}
			continue
		}

		if !baseSet {
			base, baseSet = DefaultBase, true
			loc = base
		}
		n := pseudoWords(mnem)
		if n == 0 {
			if _, ok := OpByName(mnem); !ok {
				return nil, fail(line, "unknown mnemonic %q", mnem)
			}
			n = 1
		}
		items = append(items, item{line: line, addr: loc, mnem: mnem, args: args, nwords: n})
		loc += uint32(n) * InstBytes
	}
	if !baseSet {
		// No labels, instructions, or directives ever set the origin, so
		// loc is still 0: reset it alongside base or loc-base underflows
		// (an empty source would reserve a ~4 GiB output buffer below).
		base, loc = DefaultBase, DefaultBase
	}

	// Pass 2: encode.
	out := make([]byte, 0, int(loc-base))
	emitWord := func(w Word) {
		out = binary.LittleEndian.AppendUint32(out, uint32(w))
	}
	for _, it := range items {
		if int(it.addr-base) != len(out) {
			return nil, fail(it.line, "internal: location mismatch")
		}
		if it.raw != nil {
			out = append(out, it.raw...)
			continue
		}
		words, err := encodeStmt(it, labels)
		if err != nil {
			return nil, err
		}
		for _, w := range words {
			emitWord(w)
		}
	}

	entry := base
	if e, ok := labels["_start"]; ok {
		entry = e
	}
	return &Program{Base: base, Data: out, Entry: entry, Symbols: labels}, nil
}

// directive handles one dot-directive in pass 1.
func directive(line int, mnem string, args []string, rest string, loc, base uint32, baseSet bool) (item, uint32, uint32, error) {
	fail := func(format string, fargs ...any) (item, uint32, uint32, error) {
		return item{}, 0, 0, &asmError{line: line, msg: fmt.Sprintf(format, fargs...)}
	}
	switch mnem {
	case ".org":
		if len(args) != 1 {
			return fail(".org needs one address")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return fail(".org: %v", err)
		}
		if baseSet {
			return fail(".org after code is not supported")
		}
		return item{}, uint32(v), uint32(v), nil
	case ".word":
		var raw []byte
		for _, a := range args {
			v, err := parseImm(a)
			if err != nil {
				return fail(".word: %v", err)
			}
			raw = binary.LittleEndian.AppendUint32(raw, uint32(v))
		}
		if raw == nil {
			return fail(".word needs values")
		}
		return item{line: line, raw: raw}, 0, 0, nil
	case ".byte":
		var raw []byte
		for _, a := range args {
			v, err := parseImm(a)
			if err != nil {
				return fail(".byte: %v", err)
			}
			raw = append(raw, byte(v))
		}
		if raw == nil {
			return fail(".byte needs values")
		}
		return item{line: line, raw: raw}, 0, 0, nil
	case ".double":
		var raw []byte
		for _, a := range args {
			f, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return fail(".double: %v", err)
			}
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(f))
		}
		if raw == nil {
			return fail(".double needs values")
		}
		return item{line: line, raw: raw}, 0, 0, nil
	case ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fail(".asciz needs a quoted string")
		}
		return item{line: line, raw: append([]byte(s), 0)}, 0, 0, nil
	case ".space":
		if len(args) != 1 {
			return fail(".space needs a size")
		}
		v, err := parseImm(args[0])
		if err != nil || v < 0 {
			return fail(".space: bad size")
		}
		if v > maxSpaceBytes {
			return fail(".space: size %d exceeds the %d-byte image cap", v, maxSpaceBytes)
		}
		return item{line: line, raw: make([]byte, v)}, 0, 0, nil
	case ".align":
		if len(args) != 1 {
			return fail(".align needs a byte alignment")
		}
		v, err := parseImm(args[0])
		if err != nil || v <= 0 || v&(v-1) != 0 || v > maxSpaceBytes {
			return fail(".align: bad alignment")
		}
		pad := (uint32(v) - loc%uint32(v)) % uint32(v)
		return item{line: line, raw: make([]byte, pad)}, 0, 0, nil
	}
	return fail("unknown directive %q", mnem)
}

// pseudoWords returns how many instruction words a pseudo-mnemonic expands
// to, or 0 when mnem is not a pseudo-instruction.
func pseudoWords(mnem string) int {
	switch mnem {
	case "li", "la":
		return 2
	case "mv", "j", "call", "ret", "nop", "halt", "not", "neg":
		return 1
	}
	return 0
}

// encodeStmt encodes one instruction statement (including pseudo expansion).
func encodeStmt(it item, labels map[string]uint32) ([]Word, error) {
	fail := func(format string, args ...any) ([]Word, error) {
		return nil, &asmError{line: it.line, msg: fmt.Sprintf(format, args...)}
	}
	argN := func(n int) bool { return len(it.args) == n }

	// Pseudo-instructions first.
	switch it.mnem {
	case "nop":
		return []Word{MustEncode(Inst{Op: OpAddi})}, nil
	case "halt":
		return []Word{MustEncode(Inst{Op: OpEbreak})}, nil
	case "ret":
		return []Word{MustEncode(Inst{Op: OpJalr, Rd: 0, Rs1: 1})}, nil
	case "mv":
		if !argN(2) {
			return fail("mv rd, rs")
		}
		rd, err1 := parseReg(it.args[0])
		rs, err2 := parseReg(it.args[1])
		if err1 != nil || err2 != nil {
			return fail("mv: bad register")
		}
		return []Word{MustEncode(Inst{Op: OpAddi, Rd: rd, Rs1: rs})}, nil
	case "not":
		if !argN(2) {
			return fail("not rd, rs")
		}
		rd, err1 := parseReg(it.args[0])
		rs, err2 := parseReg(it.args[1])
		if err1 != nil || err2 != nil {
			return fail("not: bad register")
		}
		return []Word{MustEncode(Inst{Op: OpXori, Rd: rd, Rs1: rs, Imm: -1})}, nil
	case "neg":
		if !argN(2) {
			return fail("neg rd, rs")
		}
		rd, err1 := parseReg(it.args[0])
		rs, err2 := parseReg(it.args[1])
		if err1 != nil || err2 != nil {
			return fail("neg: bad register")
		}
		return []Word{MustEncode(Inst{Op: OpSub, Rd: rd, Rs1: 0, Rs2: rs})}, nil
	case "li", "la":
		if !argN(2) {
			return fail("%s rd, value", it.mnem)
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%s: bad register", it.mnem)
		}
		var v int64
		if it.mnem == "la" {
			addr, ok := labels[it.args[1]]
			if !ok {
				return fail("la: undefined label %q", it.args[1])
			}
			v = int64(addr)
		} else {
			var perr error
			v, perr = parseImm(it.args[1])
			if perr != nil {
				if addr, ok := labels[it.args[1]]; ok {
					v = int64(addr)
				} else {
					return fail("li: %v", perr)
				}
			}
		}
		u := uint32(v)
		hi := signExtend(u>>12, 20)
		lo := int32(u & 0xfff)
		return []Word{
			MustEncode(Inst{Op: OpLui, Rd: rd, Imm: hi}),
			MustEncode(Inst{Op: OpOri, Rd: rd, Rs1: rd, Imm: lo}),
		}, nil
	case "j", "call":
		if !argN(1) {
			return fail("%s label", it.mnem)
		}
		target, ok := labels[it.args[0]]
		if !ok {
			return fail("%s: undefined label %q", it.mnem, it.args[0])
		}
		rd := uint8(0)
		if it.mnem == "call" {
			rd = 1 // ra
		}
		off := wordOffset(it.addr, target)
		if off < MinImm20 || off > MaxImm20 {
			return fail("%s: target out of range", it.mnem)
		}
		return []Word{MustEncode(Inst{Op: OpJal, Rd: rd, Imm: off})}, nil
	}

	op, ok := OpByName(it.mnem)
	if !ok {
		return fail("unknown mnemonic %q", it.mnem)
	}
	in := Inst{Op: op}
	var err error
	switch op.Format() {
	case FmtR:
		err = parseFmtR(&in, it.args)
	case FmtI:
		err = parseFmtI(&in, it.args, it.addr, labels)
	case FmtS:
		err = parseFmtS(&in, it.args)
	case FmtB:
		err = parseFmtB(&in, it.args, it.addr, labels)
	case FmtU:
		err = parseFmtU(&in, it.args)
	case FmtJ:
		err = parseFmtJ(&in, it.args, it.addr, labels)
	}
	if err != nil {
		return fail("%s: %v", it.mnem, err)
	}
	w, eerr := Encode(in)
	if eerr != nil {
		return fail("%v", eerr)
	}
	return []Word{w}, nil
}

func parseFmtR(in *Inst, args []string) error {
	info := &opTable[in.Op]
	want := 1
	if info.readsRs1 {
		want++
	}
	if info.readsRs2 {
		want++
	}
	if !info.writesRd {
		want-- // e.g. none currently, defensive
	}
	if len(args) != want {
		return fmt.Errorf("expected %d operands, got %d", want, len(args))
	}
	i := 0
	var err error
	if info.writesRd {
		if in.Rd, err = parseRegKind(args[i], info.fpRd); err != nil {
			return err
		}
		i++
	}
	if info.readsRs1 {
		if in.Rs1, err = parseRegKind(args[i], info.fpRs1); err != nil {
			return err
		}
		i++
	}
	if info.readsRs2 {
		if in.Rs2, err = parseRegKind(args[i], info.fpRs2); err != nil {
			return err
		}
	}
	return nil
}

func parseFmtI(in *Inst, args []string, addr uint32, labels map[string]uint32) error {
	info := &opTable[in.Op]
	switch {
	case info.isLoad, in.Op == OpJalr:
		// op rd, imm(rs1)
		if len(args) != 2 {
			return fmt.Errorf("expected rd, imm(rs1)")
		}
		rd, err := parseRegKind(args[0], info.fpRd)
		if err != nil {
			return err
		}
		imm, rs1, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, imm
		return nil
	case in.Op == OpEcall, in.Op == OpEbreak, in.Op == OpWfi, in.Op == OpMret:
		if len(args) != 0 {
			return fmt.Errorf("takes no operands")
		}
		return nil
	case in.Op == OpCsrrw, in.Op == OpCsrrs:
		// op rd, csr, rs1
		if len(args) != 3 {
			return fmt.Errorf("expected rd, csr, rs1")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		csr, err := parseImm(args[1])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[2])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, int32(csr)
		return nil
	default:
		// op rd, rs1, imm
		if len(args) != 3 {
			return fmt.Errorf("expected rd, rs1, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, int32(imm)
		return nil
	}
}

func parseFmtS(in *Inst, args []string) error {
	info := &opTable[in.Op]
	if len(args) != 2 {
		return fmt.Errorf("expected rs2, imm(rs1)")
	}
	rs2, err := parseRegKind(args[0], info.fpRs2)
	if err != nil {
		return err
	}
	imm, rs1, err := parseMemOperand(args[1])
	if err != nil {
		return err
	}
	in.Rs2, in.Rs1, in.Imm = rs2, rs1, imm
	return nil
}

func parseFmtB(in *Inst, args []string, addr uint32, labels map[string]uint32) error {
	if len(args) != 3 {
		return fmt.Errorf("expected rs1, rs2, target")
	}
	rs1, err := parseReg(args[0])
	if err != nil {
		return err
	}
	rs2, err := parseReg(args[1])
	if err != nil {
		return err
	}
	off, err := parseTarget(args[2], addr, labels)
	if err != nil {
		return err
	}
	in.Rs1, in.Rs2, in.Imm = rs1, rs2, off
	return nil
}

func parseFmtU(in *Inst, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("expected rd, imm20")
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return err
	}
	imm, err := parseImm(args[1])
	if err != nil {
		return err
	}
	if imm > MaxImm20 && imm < 1<<20 {
		// Allow writing the raw 20-bit pattern (e.g. lui x1, 0xfffff).
		imm = int64(signExtend(uint32(imm), 20))
	}
	in.Rd, in.Imm = rd, int32(imm)
	return nil
}

func parseFmtJ(in *Inst, args []string, addr uint32, labels map[string]uint32) error {
	if len(args) != 2 {
		return fmt.Errorf("expected rd, target")
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return err
	}
	off, err := parseTarget(args[1], addr, labels)
	if err != nil {
		return err
	}
	in.Rd, in.Imm = rd, off
	return nil
}

// parseTarget resolves a label or numeric word offset for control flow.
func parseTarget(s string, addr uint32, labels map[string]uint32) (int32, error) {
	if target, ok := labels[s]; ok {
		return wordOffset(addr, target), nil
	}
	v, err := parseImm(s)
	if err != nil {
		return 0, fmt.Errorf("undefined label %q", s)
	}
	return int32(v), nil
}

func wordOffset(from, to uint32) int32 {
	return int32(to-from) / InstBytes
}

// parseMemOperand parses "imm(reg)" or "(reg)".
func parseMemOperand(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var imm int64
	if open > 0 {
		var err error
		imm, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return int32(imm), reg, nil
}

func parseReg(s string) (uint8, error) { return parseRegKind(s, false) }

func parseRegKind(s string, fp bool) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	prefix := byte('x')
	if fp {
		prefix = 'f'
	}
	if len(s) >= 2 && s[0] == prefix {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < 32 {
			return uint8(n), nil
		}
	}
	if !fp {
		if n, ok := regAliases[s]; ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
