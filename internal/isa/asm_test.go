package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func word(t *testing.T, p *Program, addr uint32) Inst {
	t.Helper()
	off := addr - p.Base
	if int(off)+4 > len(p.Data) {
		t.Fatalf("address %#x outside image", addr)
	}
	return Decode(Word(binary.LittleEndian.Uint32(p.Data[off:])))
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
		# a tiny program
		_start:
			addi x1, x0, 10
			add  x2, x2, x1
			ecall
	`)
	if p.Base != DefaultBase || p.Entry != DefaultBase {
		t.Fatalf("base=%#x entry=%#x", p.Base, p.Entry)
	}
	if p.Size() != 12 {
		t.Fatalf("size = %d", p.Size())
	}
	in := word(t, p, p.Base)
	if in.Op != OpAddi || in.Rd != 1 || in.Imm != 10 {
		t.Fatalf("first inst = %v", in)
	}
	if word(t, p, p.Base+8).Op != OpEcall {
		t.Fatal("third inst not ecall")
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		_start:
			addi x1, x0, 5
		loop:
			addi x1, x1, -1
			bne  x1, x0, loop
			jal  x0, done
			nop
		done:
			ebreak
	`)
	// bne at base+8 targets loop at base+4: offset -1 word.
	bne := word(t, p, p.Base+8)
	if bne.Op != OpBne || bne.Imm != -1 {
		t.Fatalf("bne = %v", bne)
	}
	jal := word(t, p, p.Base+12)
	if jal.Op != OpJal || jal.Imm != 2 {
		t.Fatalf("jal = %v", jal)
	}
	if p.Symbol("done") != p.Base+20 {
		t.Fatalf("done = %#x", p.Symbol("done"))
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := mustAssemble(t, `
		lw  x1, 8(x2)
		sw  x1, -4(sp)
		lw  x3, (x4)
		fld f1, 16(a0)
		fsd f1, 0(a0)
	`)
	lw := word(t, p, p.Base)
	if lw.Op != OpLw || lw.Rd != 1 || lw.Rs1 != 2 || lw.Imm != 8 {
		t.Fatalf("lw = %v", lw)
	}
	sw := word(t, p, p.Base+4)
	if sw.Op != OpSw || sw.Rs2 != 1 || sw.Rs1 != 2 || sw.Imm != -4 {
		t.Fatalf("sw = %v", sw)
	}
	if word(t, p, p.Base+8).Imm != 0 {
		t.Fatal("(x4) should have zero offset")
	}
	fld := word(t, p, p.Base+12)
	if fld.Op != OpFld || fld.Rd != 1 || fld.Rs1 != 10 {
		t.Fatalf("fld = %v", fld)
	}
}

func TestAssemblePseudo(t *testing.T) {
	p := mustAssemble(t, `
		_start:
			li   a0, 0xDEADBEEF
			li   a1, 42
			la   a2, data
			mv   a3, a0
			call func
			j    end
		func:
			not  t0, a0
			neg  t1, a1
			ret
		end:
			halt
		data:
			.word 0x12345678
	`)
	// li expands to lui+ori; executing them must produce the constant.
	c := newFakeCtx()
	c.pc = p.Entry
	for i := 0; i < 2; i++ {
		in := word(t, p, c.pc)
		out := exec(t, c, in)
		c.pc = out.NextPC(c.pc)
	}
	if c.regs[10] != 0xDEADBEEF {
		t.Fatalf("li a0 = %#x", c.regs[10])
	}
	for i := 0; i < 2; i++ {
		in := word(t, p, c.pc)
		out := exec(t, c, in)
		c.pc = out.NextPC(c.pc)
	}
	if c.regs[11] != 42 {
		t.Fatalf("li a1 = %d", c.regs[11])
	}
	for i := 0; i < 2; i++ {
		in := word(t, p, c.pc)
		out := exec(t, c, in)
		c.pc = out.NextPC(c.pc)
	}
	if c.regs[12] != p.Symbol("data") {
		t.Fatalf("la a2 = %#x, want %#x", c.regs[12], p.Symbol("data"))
	}
	// call encodes jal ra.
	callIn := word(t, p, p.Entry+7*4)
	if callIn.Op != OpJal || callIn.Rd != 1 {
		t.Fatalf("call = %v", callIn)
	}
	// ret encodes jalr x0, 0(ra).
	retIn := word(t, p, p.Symbol("func")+8)
	if retIn.Op != OpJalr || retIn.Rd != 0 || retIn.Rs1 != 1 {
		t.Fatalf("ret = %v", retIn)
	}
	// halt encodes ebreak.
	if word(t, p, p.Symbol("end")).Op != OpEbreak {
		t.Fatal("halt != ebreak")
	}
}

func TestAssembleDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x2000
		_start:
			nop
		vals:
			.word 1, 2, 3
			.byte 0xAA, 0xBB
			.align 8
		flt:
			.double 2.5
		msg:
			.asciz "hi"
		buf:
			.space 16
		end_of_image:
			nop
	`)
	if p.Base != 0x2000 {
		t.Fatalf("base = %#x", p.Base)
	}
	off := p.Symbol("vals") - p.Base
	if binary.LittleEndian.Uint32(p.Data[off:]) != 1 ||
		binary.LittleEndian.Uint32(p.Data[off+8:]) != 3 {
		t.Fatal(".word values wrong")
	}
	boff := off + 12
	if p.Data[boff] != 0xAA || p.Data[boff+1] != 0xBB {
		t.Fatal(".byte values wrong")
	}
	if p.Symbol("flt")%8 != 0 {
		t.Fatal(".align failed")
	}
	doff := p.Symbol("flt") - p.Base
	bits := binary.LittleEndian.Uint64(p.Data[doff:])
	if bits != 0x4004000000000000 { // 2.5
		t.Fatalf(".double = %#x", bits)
	}
	moff := p.Symbol("msg") - p.Base
	if string(p.Data[moff:moff+3]) != "hi\x00" {
		t.Fatal(".asciz wrong")
	}
	if p.Symbol("end_of_image")-p.Symbol("buf") != 16 {
		t.Fatal(".space wrong")
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	p := mustAssemble(t, "add sp, ra, t0\nadd a0, s0, t6\nadd zero, fp, s11")
	in := word(t, p, p.Base)
	if in.Rd != 2 || in.Rs1 != 1 || in.Rs2 != 5 {
		t.Fatalf("aliases: %v", in)
	}
	in = word(t, p, p.Base+4)
	if in.Rd != 10 || in.Rs1 != 8 || in.Rs2 != 31 {
		t.Fatalf("aliases: %v", in)
	}
	in = word(t, p, p.Base+8)
	if in.Rd != 0 || in.Rs1 != 8 || in.Rs2 != 27 {
		t.Fatalf("aliases: %v", in)
	}
}

func TestAssembleCSR(t *testing.T) {
	p := mustAssemble(t, "csrrw x1, 0x300, x2\ncsrrs x0, 0x305, x0\nwfi\nmret")
	in := word(t, p, p.Base)
	if in.Op != OpCsrrw || in.Rd != 1 || in.Rs1 != 2 || in.Imm != 0x300 {
		t.Fatalf("csrrw = %v", in)
	}
	if word(t, p, p.Base+8).Op != OpWfi || word(t, p, p.Base+12).Op != OpMret {
		t.Fatal("wfi/mret wrong")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus x1, x2",
		"addi x1, x0",                      // missing operand
		"addi x1, x0, 99999",               // imm out of range
		"add x99, x0, x0",                  // bad register
		"lw x1, 8[x2]",                     // bad mem operand
		"beq x1, x2, nowhere",              // undefined label
		"x: nop\nx: nop",                   // duplicate label
		".org 0x100\nnop\n.org 0x200\nnop", // .org after code
		".word",                            // missing values
		".align 3",                         // non power of two
		"9label: nop",                      // bad label
		"li x1",                            // missing value
		"la x1, nowhere",                   // undefined la
		".asciz hi",                        // unquoted
		".space 999999999",                 // over the image cap
		".align 2147483648",                // pad would exceed the image cap
		".space 9000000\n.space 9000000",   // cumulative image over the cap
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

// TestAssembleEmptySource pins the fix for a buffer-sizing bug: a source
// with no code ever emitted left loc at 0 while base defaulted to 0x1000,
// and the loc-base underflow reserved a ~4 GiB output buffer.
func TestAssembleEmptySource(t *testing.T) {
	for _, src := range []string{"", "# comment only\n", "\n\n\n", "; other comment style"} {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", src, err)
		}
		if len(prog.Data) != 0 || cap(prog.Data) > 64 {
			t.Fatalf("Assemble(%q): len=%d cap=%d, want empty", src, len(prog.Data), cap(prog.Data))
		}
	}
}

func TestAssembleErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	cases := map[string]Inst{
		"add x3, x1, x2":      {Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		"addi x3, x1, -5":     {Op: OpAddi, Rd: 3, Rs1: 1, Imm: -5},
		"lw x3, 8(x1)":        {Op: OpLw, Rd: 3, Rs1: 1, Imm: 8},
		"sw x2, -4(x1)":       {Op: OpSw, Rs1: 1, Rs2: 2, Imm: -4},
		"beq x1, x2, 7":       {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 7},
		"jal x1, -3":          {Op: OpJal, Rd: 1, Imm: -3},
		"jalr x0, 0(x1)":      {Op: OpJalr, Rd: 0, Rs1: 1},
		"fadd f3, f1, f2":     {Op: OpFadd, Rd: 3, Rs1: 1, Rs2: 2},
		"fsd f2, 16(x1)":      {Op: OpFsd, Rs1: 1, Rs2: 2, Imm: 16},
		"fld f2, 16(x1)":      {Op: OpFld, Rd: 2, Rs1: 1, Imm: 16},
		"fsqrt f3, f1":        {Op: OpFsqrt, Rd: 3, Rs1: 1},
		"ecall":               {Op: OpEcall},
		"lui x1, 0x12345":     {Op: OpLui, Rd: 1, Imm: 0x12345},
		"csrrw x1, 0x300, x2": {Op: OpCsrrw, Rd: 1, Rs1: 2, Imm: 0x300},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

// TestAssembleDisassembleReassemble checks that disassembled text
// reassembles to the identical encoding for a representative program.
func TestAssembleDisassembleReassemble(t *testing.T) {
	src := `
		add x3, x1, x2
		sub x4, x3, x1
		addi x5, x4, 100
		lw x6, 4(x5)
		sw x6, 8(x5)
		fadd f3, f1, f2
		fld f2, 16(x1)
		fsd f2, 24(x1)
		ecall
	`
	p := mustAssemble(t, src)
	var lines []string
	for off := 0; off < len(p.Data); off += 4 {
		in := Decode(Word(binary.LittleEndian.Uint32(p.Data[off:])))
		lines = append(lines, in.String())
	}
	p2 := mustAssemble(t, strings.Join(lines, "\n"))
	if string(p.Data) != string(p2.Data) {
		t.Fatal("reassembled image differs")
	}
}

func TestProgramSymbolPanics(t *testing.T) {
	p := mustAssemble(t, "nop")
	defer func() {
		if recover() == nil {
			t.Error("Symbol on undefined label should panic")
		}
	}()
	p.Symbol("missing")
}
