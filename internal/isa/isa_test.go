package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeCtx is a minimal Context backed by plain arrays and a sparse memory
// map, used to test the executor in isolation.
type fakeCtx struct {
	regs  [32]uint32
	fregs [32]float64
	pc    uint32
	mem   map[uint32]byte
	csrs  map[uint32]uint32

	ecalls, ebreaks, wfis int
	mretTarget            uint32
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{mem: make(map[uint32]byte), csrs: make(map[uint32]uint32)}
}

func (c *fakeCtx) ReadReg(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}
func (c *fakeCtx) WriteReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}
func (c *fakeCtx) ReadFReg(r uint8) float64     { return c.fregs[r] }
func (c *fakeCtx) WriteFReg(r uint8, v float64) { c.fregs[r] = v }
func (c *fakeCtx) PC() uint32                   { return c.pc }
func (c *fakeCtx) ReadMem(addr uint32, size int) (uint64, error) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(c.mem[addr+uint32(i)])
	}
	return v, nil
}
func (c *fakeCtx) WriteMem(addr uint32, size int, v uint64) error {
	for i := 0; i < size; i++ {
		c.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}
func (c *fakeCtx) ReadCSR(num uint32) uint32     { return c.csrs[num] }
func (c *fakeCtx) WriteCSR(num uint32, v uint32) { c.csrs[num] = v }
func (c *fakeCtx) Ecall()                        { c.ecalls++ }
func (c *fakeCtx) Ebreak()                       { c.ebreaks++ }
func (c *fakeCtx) Wfi()                          { c.wfis++ }
func (c *fakeCtx) Mret() uint32                  { return c.mretTarget }

func exec(t *testing.T, c *fakeCtx, in Inst) Outcome {
	t.Helper()
	out, err := Execute(in, c)
	if err != nil {
		t.Fatalf("Execute(%v): %v", in, err)
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Property: every valid instruction survives encode→decode unchanged.
	rng := rand.New(rand.NewSource(7))
	gen := func() Inst {
		op := Op(1 + rng.Intn(NumOps-1))
		in := Inst{Op: op}
		switch op.Format() {
		case FmtR:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
		case FmtI:
			in.Rd = uint8(rng.Intn(32))
			in.Rs1 = uint8(rng.Intn(32))
			in.Imm = int32(rng.Intn(MaxImm15-MinImm15+1)) + MinImm15
		case FmtS, FmtB:
			in.Rs1 = uint8(rng.Intn(32))
			in.Rs2 = uint8(rng.Intn(32))
			in.Imm = int32(rng.Intn(MaxImm15-MinImm15+1)) + MinImm15
			if op.Format() == FmtS {
				in.Rs2, in.Rs1 = in.Rs1, in.Rs2
			}
		case FmtU, FmtJ:
			in.Rd = uint8(rng.Intn(32))
			in.Imm = int32(rng.Intn(MaxImm20-MinImm20+1)) + MinImm20
		}
		return in
	}
	for i := 0; i < 5000; i++ {
		in := gen()
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got := Decode(w)
		if got != in {
			t.Fatalf("round trip: in=%+v got=%+v word=%#x", in, got, w)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Property: Decode never panics, and invalid opcodes yield OpInvalid.
	f := func(w uint32) bool {
		in := Decode(Word(w))
		op := Op(w >> opShift)
		if int(op) >= NumOps {
			return in.Op == OpInvalid
		}
		return in.Op == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Decode(0).Op != OpInvalid {
		t.Fatal("zero word should decode to OpInvalid")
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: opCount},
		{Op: OpAdd, Rd: 32},
		{Op: OpAdd, Imm: 1},
		{Op: OpAddi, Imm: MaxImm15 + 1},
		{Op: OpAddi, Imm: MinImm15 - 1},
		{Op: OpJal, Imm: MaxImm20 + 1},
		{Op: OpSw, Imm: MinImm15 - 1},
		{Op: OpBeq, Imm: MaxImm15 + 1},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestIntegerALU(t *testing.T) {
	c := newFakeCtx()
	c.regs[1] = 7
	c.regs[2] = 3
	cases := []struct {
		op   Op
		want uint32
	}{
		{OpAdd, 10}, {OpSub, 4}, {OpAnd, 3}, {OpOr, 7}, {OpXor, 4},
		{OpSll, 56}, {OpSrl, 0}, {OpSlt, 0}, {OpSltu, 0},
		{OpMul, 21}, {OpDiv, 2}, {OpRem, 1},
	}
	for _, tc := range cases {
		exec(t, c, Inst{Op: tc.op, Rd: 3, Rs1: 1, Rs2: 2})
		if c.regs[3] != tc.want {
			t.Errorf("%s: got %d, want %d", tc.op.Name(), c.regs[3], tc.want)
		}
	}
	// Signed right shift.
	c.regs[1] = 0x8000_0000
	c.regs[2] = 4
	exec(t, c, Inst{Op: OpSra, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 0xF800_0000 {
		t.Errorf("sra: got %#x", c.regs[3])
	}
	// MULH of large values.
	c.regs[1] = 0x7fff_ffff
	c.regs[2] = 2
	exec(t, c, Inst{Op: OpMulh, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 0 {
		t.Errorf("mulh: got %#x", c.regs[3])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := newFakeCtx()
	set := func(a, b uint32) {
		c.regs[1], c.regs[2] = a, b
	}
	// Division by zero.
	set(42, 0)
	exec(t, c, Inst{Op: OpDiv, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != ^uint32(0) {
		t.Errorf("div/0 = %#x", c.regs[3])
	}
	exec(t, c, Inst{Op: OpRem, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 42 {
		t.Errorf("rem/0 = %d", c.regs[3])
	}
	exec(t, c, Inst{Op: OpDivu, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != ^uint32(0) {
		t.Errorf("divu/0 = %#x", c.regs[3])
	}
	exec(t, c, Inst{Op: OpRemu, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 42 {
		t.Errorf("remu/0 = %d", c.regs[3])
	}
	// Signed overflow INT_MIN / -1.
	set(0x8000_0000, ^uint32(0))
	exec(t, c, Inst{Op: OpDiv, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 0x8000_0000 {
		t.Errorf("INT_MIN/-1 = %#x", c.regs[3])
	}
	exec(t, c, Inst{Op: OpRem, Rd: 3, Rs1: 1, Rs2: 2})
	if c.regs[3] != 0 {
		t.Errorf("INT_MIN%%-1 = %d", c.regs[3])
	}
}

func TestX0Hardwired(t *testing.T) {
	c := newFakeCtx()
	c.regs[1] = 5
	exec(t, c, Inst{Op: OpAdd, Rd: 0, Rs1: 1, Rs2: 1})
	if c.ReadReg(0) != 0 {
		t.Fatal("x0 written")
	}
	in := Inst{Op: OpAdd, Rd: 0, Rs1: 1, Rs2: 1}
	if in.Dest() != InvalidReg {
		t.Fatal("write to x0 should have no dest")
	}
}

func TestLoadsAndStores(t *testing.T) {
	c := newFakeCtx()
	c.regs[1] = 0x100
	c.regs[2] = 0xDEADBEEF
	exec(t, c, Inst{Op: OpSw, Rs1: 1, Rs2: 2, Imm: 4})
	out := exec(t, c, Inst{Op: OpLw, Rd: 3, Rs1: 1, Imm: 4})
	if !out.HasMem || out.MemAddr != 0x104 {
		t.Fatalf("outcome = %+v", out)
	}
	if c.regs[3] != 0xDEADBEEF {
		t.Fatalf("lw = %#x", c.regs[3])
	}
	// Signed byte load.
	exec(t, c, Inst{Op: OpLb, Rd: 3, Rs1: 1, Imm: 7}) // 0xDE
	if c.regs[3] != 0xFFFF_FFDE {
		t.Fatalf("lb = %#x", c.regs[3])
	}
	exec(t, c, Inst{Op: OpLbu, Rd: 3, Rs1: 1, Imm: 7})
	if c.regs[3] != 0xDE {
		t.Fatalf("lbu = %#x", c.regs[3])
	}
	// Halfword.
	exec(t, c, Inst{Op: OpLh, Rd: 3, Rs1: 1, Imm: 6}) // 0xDEAD
	if c.regs[3] != 0xFFFF_DEAD {
		t.Fatalf("lh = %#x", c.regs[3])
	}
	exec(t, c, Inst{Op: OpLhu, Rd: 3, Rs1: 1, Imm: 6})
	if c.regs[3] != 0xDEAD {
		t.Fatalf("lhu = %#x", c.regs[3])
	}
	// Float round trip through memory.
	c.fregs[4] = 3.25
	exec(t, c, Inst{Op: OpFsd, Rs1: 1, Rs2: 4, Imm: 16})
	exec(t, c, Inst{Op: OpFld, Rd: 5, Rs1: 1, Imm: 16})
	if c.fregs[5] != 3.25 {
		t.Fatalf("fld = %v", c.fregs[5])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	c := newFakeCtx()
	c.pc = 0x1000
	c.regs[1] = 5
	c.regs[2] = 5
	out := exec(t, c, Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 10})
	if !out.ControlTaken || out.ControlTarget != 0x1000+40 {
		t.Fatalf("beq taken: %+v", out)
	}
	out = exec(t, c, Inst{Op: OpBne, Rs1: 1, Rs2: 2, Imm: 10})
	if out.ControlTaken {
		t.Fatalf("bne not-taken: %+v", out)
	}
	if out.NextPC(c.pc) != 0x1004 {
		t.Fatalf("NextPC fallthrough = %#x", out.NextPC(c.pc))
	}
	// Backward branch.
	out = exec(t, c, Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -4})
	if out.ControlTarget != 0x1000-16 {
		t.Fatalf("backward target = %#x", out.ControlTarget)
	}
	// JAL links and redirects.
	out = exec(t, c, Inst{Op: OpJal, Rd: 1, Imm: 100})
	if c.regs[1] != 0x1004 || out.ControlTarget != 0x1000+400 || !out.ControlTaken {
		t.Fatalf("jal: link=%#x out=%+v", c.regs[1], out)
	}
	// JALR masks low bits.
	c.regs[5] = 0x2003
	out = exec(t, c, Inst{Op: OpJalr, Rd: 2, Rs1: 5, Imm: 0})
	if out.ControlTarget != 0x2000 {
		t.Fatalf("jalr target = %#x", out.ControlTarget)
	}
	// Unsigned comparisons.
	c.regs[1] = 0xFFFF_FFFF // -1 signed, huge unsigned
	c.regs[2] = 1
	out = exec(t, c, Inst{Op: OpBlt, Rs1: 1, Rs2: 2, Imm: 1})
	if !out.ControlTaken {
		t.Fatal("blt signed should take")
	}
	out = exec(t, c, Inst{Op: OpBltu, Rs1: 1, Rs2: 2, Imm: 1})
	if out.ControlTaken {
		t.Fatal("bltu unsigned should not take")
	}
}

func TestFloatOps(t *testing.T) {
	c := newFakeCtx()
	c.fregs[1] = 9.0
	c.fregs[2] = 2.0
	checks := []struct {
		op   Op
		want float64
	}{
		{OpFadd, 11}, {OpFsub, 7}, {OpFmul, 18}, {OpFdiv, 4.5},
		{OpFmin, 2}, {OpFmax, 9},
	}
	for _, tc := range checks {
		exec(t, c, Inst{Op: tc.op, Rd: 3, Rs1: 1, Rs2: 2})
		if c.fregs[3] != tc.want {
			t.Errorf("%s = %v, want %v", tc.op.Name(), c.fregs[3], tc.want)
		}
	}
	exec(t, c, Inst{Op: OpFsqrt, Rd: 3, Rs1: 1})
	if c.fregs[3] != 3 {
		t.Errorf("fsqrt = %v", c.fregs[3])
	}
	c.fregs[1] = -2.5
	exec(t, c, Inst{Op: OpFabs, Rd: 3, Rs1: 1})
	if c.fregs[3] != 2.5 {
		t.Errorf("fabs = %v", c.fregs[3])
	}
	exec(t, c, Inst{Op: OpFneg, Rd: 3, Rs1: 1})
	if c.fregs[3] != 2.5 {
		t.Errorf("fneg = %v", c.fregs[3])
	}
	exec(t, c, Inst{Op: OpFmv, Rd: 3, Rs1: 1})
	if c.fregs[3] != -2.5 {
		t.Errorf("fmv = %v", c.fregs[3])
	}
	// Conversions.
	minus7 := int32(-7)
	c.regs[4] = uint32(minus7)
	exec(t, c, Inst{Op: OpFcvtDW, Rd: 3, Rs1: 4})
	if c.fregs[3] != -7 {
		t.Errorf("fcvt.d.w = %v", c.fregs[3])
	}
	c.fregs[1] = -3.9
	exec(t, c, Inst{Op: OpFcvtWD, Rd: 5, Rs1: 1})
	if int32(c.regs[5]) != -3 {
		t.Errorf("fcvt.w.d = %d", int32(c.regs[5]))
	}
	// Comparisons.
	c.fregs[1], c.fregs[2] = 1.0, 2.0
	exec(t, c, Inst{Op: OpFlt, Rd: 5, Rs1: 1, Rs2: 2})
	if c.regs[5] != 1 {
		t.Error("flt")
	}
	exec(t, c, Inst{Op: OpFeq, Rd: 5, Rs1: 1, Rs2: 2})
	if c.regs[5] != 0 {
		t.Error("feq")
	}
	exec(t, c, Inst{Op: OpFle, Rd: 5, Rs1: 1, Rs2: 1})
	if c.regs[5] != 1 {
		t.Error("fle")
	}
	// NaN propagates through sqrt of negative.
	c.fregs[1] = -1
	exec(t, c, Inst{Op: OpFsqrt, Rd: 3, Rs1: 1})
	if !math.IsNaN(c.fregs[3]) {
		t.Error("fsqrt(-1) should be NaN")
	}
}

func TestSystemOps(t *testing.T) {
	c := newFakeCtx()
	exec(t, c, Inst{Op: OpEcall})
	exec(t, c, Inst{Op: OpEbreak})
	exec(t, c, Inst{Op: OpWfi})
	if c.ecalls != 1 || c.ebreaks != 1 || c.wfis != 1 {
		t.Fatalf("system counts: %d %d %d", c.ecalls, c.ebreaks, c.wfis)
	}
	c.regs[1] = 0x55
	exec(t, c, Inst{Op: OpCsrrw, Rd: 2, Rs1: 1, Imm: 0x300})
	if c.csrs[0x300] != 0x55 || c.regs[2] != 0 {
		t.Fatalf("csrrw: csr=%#x rd=%#x", c.csrs[0x300], c.regs[2])
	}
	c.regs[1] = 0x0A
	exec(t, c, Inst{Op: OpCsrrs, Rd: 2, Rs1: 1, Imm: 0x300})
	if c.csrs[0x300] != 0x5F || c.regs[2] != 0x55 {
		t.Fatalf("csrrs: csr=%#x rd=%#x", c.csrs[0x300], c.regs[2])
	}
	// csrrs with rs1=x0 must not write.
	exec(t, c, Inst{Op: OpCsrrs, Rd: 3, Rs1: 0, Imm: 0x300})
	if c.csrs[0x300] != 0x5F || c.regs[3] != 0x5F {
		t.Fatal("csrrs x0 should be read-only")
	}
	c.mretTarget = 0x8000
	out := exec(t, c, Inst{Op: OpMret})
	if !out.ControlTaken || out.ControlTarget != 0x8000 {
		t.Fatalf("mret: %+v", out)
	}
	// Illegal instruction errors out.
	if _, err := Execute(Inst{Op: OpInvalid}, c); err == nil {
		t.Fatal("OpInvalid should error")
	}
}

func TestOperandMetadata(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2}
	if in.Dest() != 3 {
		t.Errorf("add dest = %d", in.Dest())
	}
	srcs := in.Srcs(nil)
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Errorf("add srcs = %v", srcs)
	}
	fin := Inst{Op: OpFadd, Rd: 3, Rs1: 1, Rs2: 2}
	if fin.Dest() != FpRegBase+3 {
		t.Errorf("fadd dest = %d", fin.Dest())
	}
	fsrcs := fin.Srcs(nil)
	if fsrcs[0] != FpRegBase+1 || fsrcs[1] != FpRegBase+2 {
		t.Errorf("fadd srcs = %v", fsrcs)
	}
	st := Inst{Op: OpSw, Rs1: 1, Rs2: 2}
	if st.Dest() != InvalidReg {
		t.Error("store has no dest")
	}
	if !st.IsStore() || !st.IsMem() || st.IsLoad() {
		t.Error("store flags wrong")
	}
	ld := Inst{Op: OpFld, Rd: 7, Rs1: 1}
	if ld.Dest() != FpRegBase+7 || !ld.IsLoad() || ld.MemSize() != 8 {
		t.Error("fld metadata wrong")
	}
	br := Inst{Op: OpBeq}
	if !br.IsBranch() || !br.IsControl() || br.IsJump() || br.IsIndirect() {
		t.Error("branch flags wrong")
	}
	j := Inst{Op: OpJalr, Rd: 1, Rs1: 2}
	if !j.IsJump() || !j.IsIndirect() || !j.IsControl() {
		t.Error("jalr flags wrong")
	}
	if OpLw.Class() != ClassMemRead || OpFdiv.Class() != ClassFloatDiv {
		t.Error("classes wrong")
	}
	if ClassIntAlu.String() != "IntAlu" || Class(200).String() != "Class?" {
		t.Error("class strings wrong")
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.Name(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
	if Op(250).Name() != "op?" {
		t.Error("out-of-range name")
	}
}

func TestEffAddrAndStoreDataPanics(t *testing.T) {
	c := newFakeCtx()
	defer func() {
		if recover() == nil {
			t.Error("EffAddr on non-mem should panic")
		}
	}()
	EffAddr(Inst{Op: OpAdd}, c)
}

func TestCompleteLoadPanics(t *testing.T) {
	c := newFakeCtx()
	defer func() {
		if recover() == nil {
			t.Error("CompleteLoad on non-load should panic")
		}
	}()
	CompleteLoad(Inst{Op: OpAdd}, c, 0)
}
