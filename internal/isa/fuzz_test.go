package isa

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzDecodeEncode checks the decoder/encoder pair over the full 32-bit
// word space: any word whose opcode is valid must decode to an instruction
// the encoder accepts, and re-encoding must be a stable normalization
// (encode(decode(w)) is a fixed point of decode∘encode).
func FuzzDecodeEncode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(MustEncode(Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3})))
	f.Add(uint32(MustEncode(Inst{Op: OpAddi, Rd: 5, Rs1: 5, Imm: -1})))
	f.Add(uint32(MustEncode(Inst{Op: OpLui, Rd: 7, Imm: -1}))) // all-ones 20-bit pattern
	f.Add(uint32(MustEncode(Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -4})))
	f.Add(uint32(MustEncode(Inst{Op: OpEcall})))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(Word(w))
		if !in.Op.Valid() {
			t.Skip()
		}
		canon, err := Encode(in)
		if err != nil {
			t.Fatalf("decode(%#x) = %+v rejected by encoder: %v", w, in, err)
		}
		if got := Decode(canon); got != in {
			t.Fatalf("decode(%#x) = %+v, but decode(encode(...)) = %+v", w, in, got)
		}
		again, err := Encode(Decode(canon))
		if err != nil || again != canon {
			t.Fatalf("normalization unstable: %#x -> %#x -> %#x (%v)", w, canon, again, err)
		}
	})
}

// FuzzAsmRoundTrip checks the assemble→disassemble→assemble fixed point:
// any source the assembler accepts, once lowered to canonical words, must
// disassemble (Inst.String) to text that reassembles to the identical
// image. Programs containing data words that are not canonical
// instructions are skipped — raw data has no faithful disassembly.
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("start:\n  li a0, 42\n  addi a0, a0, 1\n  ecall\n")
	f.Add("  li sp, 0x8000\n  la t0, buf\n  sw a0, 0(t0)\n  lw a1, 0(t0)\n  ebreak\nbuf:\n  .space 16\n")
	f.Add("loop:\n  addi t0, t0, -1\n  bne t0, x0, loop\n  jal x1, done\ndone:\n  ecall\n")
	f.Add("  fld f1, 0(s10)\n  fadd f2, f1, f1\n  fsd f2, 8(s10)\n  csrrw x5, 0x340, x6\n  mret\n")
	f.Add("  lui x1, 0xfffff\n  ori x1, x1, 123\n  jalr x0, 0(x1)\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip() // keep per-exec cost bounded (.space can be huge)
		}
		prog, err := Assemble(src)
		if err != nil || len(prog.Data)%4 != 0 || len(prog.Data) == 0 || len(prog.Data) > 16384 {
			t.Skip()
		}
		var lines []string
		for off := 0; off < len(prog.Data); off += 4 {
			w := Word(binary.LittleEndian.Uint32(prog.Data[off:]))
			in := Decode(w)
			if !in.Op.Valid() {
				t.Skip() // data word, not an instruction
			}
			canon, err := Encode(in)
			if err != nil || canon != w {
				t.Skip() // non-canonical word (e.g. data that happens to decode)
			}
			lines = append(lines, in.String())
		}
		src2 := strings.Join(lines, "\n") + "\n"
		prog2, err := Assemble(src2)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, src2)
		}
		if !bytes.Equal(prog.Data, prog2.Data) {
			t.Fatalf("round trip changed image:\noriginal:  %x\nroundtrip: %x\ndisassembly:\n%s",
				prog.Data, prog2.Data, src2)
		}
	})
}
