package isa

import (
	"fmt"
	"math"
)

// Context is the architectural state interface the executor operates on.
// Each CPU model provides an implementation; the semantics in this file are
// shared so that every model retires bit-identical results.
type Context interface {
	// ReadReg returns integer register r; r==0 must read as zero.
	ReadReg(r uint8) uint32
	// WriteReg sets integer register r; writes to r==0 must be dropped.
	WriteReg(r uint8, v uint32)
	// ReadFReg returns float register r.
	ReadFReg(r uint8) float64
	// WriteFReg sets float register r.
	WriteFReg(r uint8, v float64)
	// PC returns the address of the executing instruction.
	PC() uint32
	// ReadMem loads size bytes at addr (zero-extended into the result).
	ReadMem(addr uint32, size int) (uint64, error)
	// WriteMem stores the low size bytes of v at addr.
	WriteMem(addr uint32, size int, v uint64) error
	// ReadCSR returns machine CSR num.
	ReadCSR(num uint32) uint32
	// WriteCSR sets machine CSR num.
	WriteCSR(num uint32, v uint32)
	// Ecall handles an environment call (SE syscall or FS trap).
	Ecall()
	// Ebreak handles a breakpoint (workload exit in bare-metal programs).
	Ebreak()
	// Wfi handles wait-for-interrupt.
	Wfi()
	// Mret returns the PC to resume at after a machine-mode trap return.
	Mret() uint32
}

// Outcome reports the side channel of one executed instruction, used by the
// CPU models for PC redirection and pipeline bookkeeping.
type Outcome struct {
	// ControlTaken is true when the PC must be redirected to ControlTarget.
	ControlTaken  bool
	ControlTarget uint32
	// HasMem is true for loads and stores; MemAddr is the effective address.
	HasMem  bool
	MemAddr uint32
}

// NextPC returns the address of the next instruction given the outcome.
func (o Outcome) NextPC(pc uint32) uint32 {
	if o.ControlTaken {
		return o.ControlTarget
	}
	return pc + InstBytes
}

// EffAddr computes the effective address of a load or store without
// executing it. It panics if in is not a memory instruction.
func EffAddr(in Inst, ctx Context) uint32 {
	if !in.IsMem() {
		panic("isa: EffAddr on non-memory instruction " + in.Op.Name())
	}
	return ctx.ReadReg(in.Rs1) + uint32(in.Imm)
}

// StoreData returns the register value a store writes to memory.
func StoreData(in Inst, ctx Context) uint64 {
	switch in.Op {
	case OpSb, OpSh, OpSw:
		return uint64(ctx.ReadReg(in.Rs2))
	case OpFsd:
		return math.Float64bits(ctx.ReadFReg(in.Rs2))
	}
	panic("isa: StoreData on non-store " + in.Op.Name())
}

// CompleteLoad writes loaded data into the destination register, applying
// size/sign conversion. Timing CPU models call this when the memory response
// arrives.
func CompleteLoad(in Inst, ctx Context, data uint64) {
	switch in.Op {
	case OpLb:
		ctx.WriteReg(in.Rd, uint32(int32(int8(data))))
	case OpLbu:
		ctx.WriteReg(in.Rd, uint32(data&0xff))
	case OpLh:
		ctx.WriteReg(in.Rd, uint32(int32(int16(data))))
	case OpLhu:
		ctx.WriteReg(in.Rd, uint32(data&0xffff))
	case OpLw:
		ctx.WriteReg(in.Rd, uint32(data))
	case OpFld:
		ctx.WriteFReg(in.Rd, math.Float64frombits(data))
	default:
		panic("isa: CompleteLoad on non-load " + in.Op.Name())
	}
}

// Execute runs one instruction to architectural completion against ctx,
// including any memory access (atomic semantics). The PC register itself is
// not advanced; callers use Outcome.NextPC.
func Execute(in Inst, ctx Context) (Outcome, error) {
	var out Outcome
	r := ctx.ReadReg
	w := ctx.WriteReg
	pc := ctx.PC()

	switch in.Op {
	// Integer ALU.
	case OpAdd:
		w(in.Rd, r(in.Rs1)+r(in.Rs2))
	case OpSub:
		w(in.Rd, r(in.Rs1)-r(in.Rs2))
	case OpAnd:
		w(in.Rd, r(in.Rs1)&r(in.Rs2))
	case OpOr:
		w(in.Rd, r(in.Rs1)|r(in.Rs2))
	case OpXor:
		w(in.Rd, r(in.Rs1)^r(in.Rs2))
	case OpSll:
		w(in.Rd, r(in.Rs1)<<(r(in.Rs2)&31))
	case OpSrl:
		w(in.Rd, r(in.Rs1)>>(r(in.Rs2)&31))
	case OpSra:
		w(in.Rd, uint32(int32(r(in.Rs1))>>(r(in.Rs2)&31)))
	case OpSlt:
		w(in.Rd, b2u(int32(r(in.Rs1)) < int32(r(in.Rs2))))
	case OpSltu:
		w(in.Rd, b2u(r(in.Rs1) < r(in.Rs2)))
	case OpMul:
		w(in.Rd, r(in.Rs1)*r(in.Rs2))
	case OpMulh:
		w(in.Rd, uint32(uint64(int64(int32(r(in.Rs1)))*int64(int32(r(in.Rs2))))>>32))
	case OpDiv:
		w(in.Rd, divS(int32(r(in.Rs1)), int32(r(in.Rs2))))
	case OpDivu:
		w(in.Rd, divU(r(in.Rs1), r(in.Rs2)))
	case OpRem:
		w(in.Rd, remS(int32(r(in.Rs1)), int32(r(in.Rs2))))
	case OpRemu:
		w(in.Rd, remU(r(in.Rs1), r(in.Rs2)))

	// Immediate ALU.
	case OpAddi:
		w(in.Rd, r(in.Rs1)+uint32(in.Imm))
	case OpAndi:
		w(in.Rd, r(in.Rs1)&uint32(in.Imm))
	case OpOri:
		w(in.Rd, r(in.Rs1)|uint32(in.Imm))
	case OpXori:
		w(in.Rd, r(in.Rs1)^uint32(in.Imm))
	case OpSlli:
		w(in.Rd, r(in.Rs1)<<(uint32(in.Imm)&31))
	case OpSrli:
		w(in.Rd, r(in.Rs1)>>(uint32(in.Imm)&31))
	case OpSrai:
		w(in.Rd, uint32(int32(r(in.Rs1))>>(uint32(in.Imm)&31)))
	case OpSlti:
		w(in.Rd, b2u(int32(r(in.Rs1)) < in.Imm))
	case OpSltiu:
		w(in.Rd, b2u(r(in.Rs1) < uint32(in.Imm)))
	case OpLui:
		w(in.Rd, uint32(in.Imm)<<12)
	case OpAuipc:
		w(in.Rd, pc+uint32(in.Imm)<<12)

	// Memory.
	case OpLb, OpLbu, OpLh, OpLhu, OpLw, OpFld:
		addr := EffAddr(in, ctx)
		out.HasMem, out.MemAddr = true, addr
		data, err := ctx.ReadMem(addr, in.MemSize())
		if err != nil {
			return out, err
		}
		CompleteLoad(in, ctx, data)
	case OpSb, OpSh, OpSw, OpFsd:
		addr := EffAddr(in, ctx)
		out.HasMem, out.MemAddr = true, addr
		if err := ctx.WriteMem(addr, in.MemSize(), StoreData(in, ctx)); err != nil {
			return out, err
		}

	// Control.
	case OpBeq:
		out = branch(pc, in.Imm, r(in.Rs1) == r(in.Rs2))
	case OpBne:
		out = branch(pc, in.Imm, r(in.Rs1) != r(in.Rs2))
	case OpBlt:
		out = branch(pc, in.Imm, int32(r(in.Rs1)) < int32(r(in.Rs2)))
	case OpBge:
		out = branch(pc, in.Imm, int32(r(in.Rs1)) >= int32(r(in.Rs2)))
	case OpBltu:
		out = branch(pc, in.Imm, r(in.Rs1) < r(in.Rs2))
	case OpBgeu:
		out = branch(pc, in.Imm, r(in.Rs1) >= r(in.Rs2))
	case OpJal:
		w(in.Rd, pc+InstBytes)
		out.ControlTaken = true
		out.ControlTarget = pc + uint32(in.Imm)*InstBytes
	case OpJalr:
		target := (r(in.Rs1) + uint32(in.Imm)) &^ 3
		w(in.Rd, pc+InstBytes)
		out.ControlTaken = true
		out.ControlTarget = target

	// Floating point.
	case OpFadd:
		ctx.WriteFReg(in.Rd, ctx.ReadFReg(in.Rs1)+ctx.ReadFReg(in.Rs2))
	case OpFsub:
		ctx.WriteFReg(in.Rd, ctx.ReadFReg(in.Rs1)-ctx.ReadFReg(in.Rs2))
	case OpFmul:
		ctx.WriteFReg(in.Rd, ctx.ReadFReg(in.Rs1)*ctx.ReadFReg(in.Rs2))
	case OpFdiv:
		ctx.WriteFReg(in.Rd, ctx.ReadFReg(in.Rs1)/ctx.ReadFReg(in.Rs2))
	case OpFsqrt:
		ctx.WriteFReg(in.Rd, math.Sqrt(ctx.ReadFReg(in.Rs1)))
	case OpFmin:
		ctx.WriteFReg(in.Rd, math.Min(ctx.ReadFReg(in.Rs1), ctx.ReadFReg(in.Rs2)))
	case OpFmax:
		ctx.WriteFReg(in.Rd, math.Max(ctx.ReadFReg(in.Rs1), ctx.ReadFReg(in.Rs2)))
	case OpFabs:
		ctx.WriteFReg(in.Rd, math.Abs(ctx.ReadFReg(in.Rs1)))
	case OpFneg:
		ctx.WriteFReg(in.Rd, -ctx.ReadFReg(in.Rs1))
	case OpFmv:
		ctx.WriteFReg(in.Rd, ctx.ReadFReg(in.Rs1))
	case OpFcvtDW:
		ctx.WriteFReg(in.Rd, float64(int32(r(in.Rs1))))
	case OpFcvtWD:
		w(in.Rd, uint32(int32(ctx.ReadFReg(in.Rs1))))
	case OpFeq:
		w(in.Rd, b2u(ctx.ReadFReg(in.Rs1) == ctx.ReadFReg(in.Rs2)))
	case OpFlt:
		w(in.Rd, b2u(ctx.ReadFReg(in.Rs1) < ctx.ReadFReg(in.Rs2)))
	case OpFle:
		w(in.Rd, b2u(ctx.ReadFReg(in.Rs1) <= ctx.ReadFReg(in.Rs2)))

	// System.
	case OpEcall:
		ctx.Ecall()
	case OpEbreak:
		ctx.Ebreak()
	case OpCsrrw:
		old := ctx.ReadCSR(uint32(in.Imm) & 0x7fff)
		ctx.WriteCSR(uint32(in.Imm)&0x7fff, r(in.Rs1))
		w(in.Rd, old)
	case OpCsrrs:
		old := ctx.ReadCSR(uint32(in.Imm) & 0x7fff)
		if in.Rs1 != 0 {
			ctx.WriteCSR(uint32(in.Imm)&0x7fff, old|r(in.Rs1))
		}
		w(in.Rd, old)
	case OpWfi:
		ctx.Wfi()
	case OpMret:
		out.ControlTaken = true
		out.ControlTarget = ctx.Mret()

	default:
		return out, fmt.Errorf("isa: illegal instruction %#x at pc %#x", uint8(in.Op), pc)
	}
	return out, nil
}

func branch(pc uint32, imm int32, taken bool) Outcome {
	return Outcome{ControlTaken: taken, ControlTarget: pc + uint32(imm)*InstBytes}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b int32) uint32 {
	switch {
	case b == 0:
		return ^uint32(0)
	case a == math.MinInt32 && b == -1:
		return uint32(a)
	default:
		return uint32(a / b)
	}
}

func divU(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0)
	}
	return a / b
}

func remS(a, b int32) uint32 {
	switch {
	case b == 0:
		return uint32(a)
	case a == math.MinInt32 && b == -1:
		return 0
	default:
		return uint32(a % b)
	}
}

func remU(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}
