// Package isa defines KISA, the small 32-bit RISC instruction set executed
// by the g5 guest CPU models: instruction encoding and decoding, the
// architectural execution semantics shared by every CPU model, an assembler
// with labels, and a disassembler.
//
// KISA is deliberately RISC-V-flavoured: 32 integer registers (x0 hardwired
// to zero), 32 float64 registers, fixed 32-bit instruction words, and a
// small machine-mode CSR file sufficient to boot the FS-mode mini-kernel.
package isa

// Op enumerates every KISA opcode.
type Op uint8

// Opcodes. The zero value is OpInvalid so that zeroed memory decodes to an
// illegal instruction.
const (
	OpInvalid Op = iota

	// Integer register-register (format R).
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu
	OpMul
	OpMulh
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Integer register-immediate (format I).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltiu

	// Upper immediate (format U).
	OpLui
	OpAuipc

	// Loads (format I) and stores (format S).
	OpLb
	OpLbu
	OpLh
	OpLhu
	OpLw
	OpSb
	OpSh
	OpSw
	OpFld // load float64 into f[rd]
	OpFsd // store f[rs2]

	// Branches (format B) and jumps.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // format J
	OpJalr // format I

	// Floating point, register-register on f regs (format R).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFmin
	OpFmax
	OpFabs
	OpFneg
	OpFmv    // f[rd] = f[rs1]
	OpFcvtDW // f[rd] = float64(int32(x[rs1]))
	OpFcvtWD // x[rd] = int32(f[rs1])
	OpFeq    // x[rd] = f[rs1]==f[rs2]
	OpFlt
	OpFle

	// System (format I, imm used as CSR number for CSR ops).
	OpEcall
	OpEbreak
	OpCsrrw // x[rd] = csr; csr = x[rs1]
	OpCsrrs // x[rd] = csr; csr |= x[rs1]
	OpWfi
	OpMret

	opCount // sentinel
)

// Format describes how an instruction word's fields are laid out.
type Format uint8

// Instruction formats.
const (
	FmtR Format = iota // op rd rs1 rs2
	FmtI               // op rd rs1 imm15
	FmtS               // op rs2 rs1 imm15  (stores: rs2 is data)
	FmtB               // op rs1 rs2 imm15  (word offset)
	FmtU               // op rd imm20       (LUI/AUIPC)
	FmtJ               // op rd imm20       (JAL, word offset)
)

// Class buckets instructions by the functional unit they occupy in the
// detailed CPU models.
type Class uint8

// Instruction classes.
const (
	ClassIntAlu Class = iota
	ClassIntMult
	ClassIntDiv
	ClassMemRead
	ClassMemWrite
	ClassBranch
	ClassFloatAdd
	ClassFloatMult
	ClassFloatDiv
	ClassFloatSqrt
	ClassFloatCvt
	ClassSystem
	classCount
)

func (c Class) String() string {
	switch c {
	case ClassIntAlu:
		return "IntAlu"
	case ClassIntMult:
		return "IntMult"
	case ClassIntDiv:
		return "IntDiv"
	case ClassMemRead:
		return "MemRead"
	case ClassMemWrite:
		return "MemWrite"
	case ClassBranch:
		return "Branch"
	case ClassFloatAdd:
		return "FloatAdd"
	case ClassFloatMult:
		return "FloatMult"
	case ClassFloatDiv:
		return "FloatDiv"
	case ClassFloatSqrt:
		return "FloatSqrt"
	case ClassFloatCvt:
		return "FloatCvt"
	case ClassSystem:
		return "System"
	}
	return "Class?"
}

// opInfo is static metadata for one opcode.
type opInfo struct {
	name   string
	format Format
	class  Class

	readsRs1  bool
	readsRs2  bool
	writesRd  bool
	fpRs1     bool // rs1 names an f register
	fpRs2     bool
	fpRd      bool
	isLoad    bool
	isStore   bool
	isBranch  bool // conditional control flow
	isJump    bool // unconditional control flow
	isSystem  bool
	memSize   uint8 // bytes moved for loads/stores
	memSigned bool
}

var opTable = [opCount]opInfo{
	OpInvalid: {name: "invalid", format: FmtR, class: ClassSystem, isSystem: true},

	OpAdd:  {name: "add", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSub:  {name: "sub", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpAnd:  {name: "and", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpOr:   {name: "or", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpXor:  {name: "xor", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSll:  {name: "sll", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSrl:  {name: "srl", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSra:  {name: "sra", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSlt:  {name: "slt", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpSltu: {name: "sltu", format: FmtR, class: ClassIntAlu, readsRs1: true, readsRs2: true, writesRd: true},
	OpMul:  {name: "mul", format: FmtR, class: ClassIntMult, readsRs1: true, readsRs2: true, writesRd: true},
	OpMulh: {name: "mulh", format: FmtR, class: ClassIntMult, readsRs1: true, readsRs2: true, writesRd: true},
	OpDiv:  {name: "div", format: FmtR, class: ClassIntDiv, readsRs1: true, readsRs2: true, writesRd: true},
	OpDivu: {name: "divu", format: FmtR, class: ClassIntDiv, readsRs1: true, readsRs2: true, writesRd: true},
	OpRem:  {name: "rem", format: FmtR, class: ClassIntDiv, readsRs1: true, readsRs2: true, writesRd: true},
	OpRemu: {name: "remu", format: FmtR, class: ClassIntDiv, readsRs1: true, readsRs2: true, writesRd: true},

	OpAddi:  {name: "addi", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpAndi:  {name: "andi", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpOri:   {name: "ori", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpXori:  {name: "xori", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpSlli:  {name: "slli", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpSrli:  {name: "srli", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpSrai:  {name: "srai", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpSlti:  {name: "slti", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},
	OpSltiu: {name: "sltiu", format: FmtI, class: ClassIntAlu, readsRs1: true, writesRd: true},

	OpLui:   {name: "lui", format: FmtU, class: ClassIntAlu, writesRd: true},
	OpAuipc: {name: "auipc", format: FmtU, class: ClassIntAlu, writesRd: true},

	OpLb:  {name: "lb", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, isLoad: true, memSize: 1, memSigned: true},
	OpLbu: {name: "lbu", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, isLoad: true, memSize: 1},
	OpLh:  {name: "lh", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, isLoad: true, memSize: 2, memSigned: true},
	OpLhu: {name: "lhu", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, isLoad: true, memSize: 2},
	OpLw:  {name: "lw", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, isLoad: true, memSize: 4},
	OpSb:  {name: "sb", format: FmtS, class: ClassMemWrite, readsRs1: true, readsRs2: true, isStore: true, memSize: 1},
	OpSh:  {name: "sh", format: FmtS, class: ClassMemWrite, readsRs1: true, readsRs2: true, isStore: true, memSize: 2},
	OpSw:  {name: "sw", format: FmtS, class: ClassMemWrite, readsRs1: true, readsRs2: true, isStore: true, memSize: 4},
	OpFld: {name: "fld", format: FmtI, class: ClassMemRead, readsRs1: true, writesRd: true, fpRd: true, isLoad: true, memSize: 8},
	OpFsd: {name: "fsd", format: FmtS, class: ClassMemWrite, readsRs1: true, readsRs2: true, fpRs2: true, isStore: true, memSize: 8},

	OpBeq:  {name: "beq", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpBne:  {name: "bne", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpBlt:  {name: "blt", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpBge:  {name: "bge", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpBltu: {name: "bltu", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpBgeu: {name: "bgeu", format: FmtB, class: ClassBranch, readsRs1: true, readsRs2: true, isBranch: true},
	OpJal:  {name: "jal", format: FmtJ, class: ClassBranch, writesRd: true, isJump: true},
	OpJalr: {name: "jalr", format: FmtI, class: ClassBranch, readsRs1: true, writesRd: true, isJump: true},

	OpFadd:   {name: "fadd", format: FmtR, class: ClassFloatAdd, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFsub:   {name: "fsub", format: FmtR, class: ClassFloatAdd, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFmul:   {name: "fmul", format: FmtR, class: ClassFloatMult, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFdiv:   {name: "fdiv", format: FmtR, class: ClassFloatDiv, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFsqrt:  {name: "fsqrt", format: FmtR, class: ClassFloatSqrt, readsRs1: true, writesRd: true, fpRs1: true, fpRd: true},
	OpFmin:   {name: "fmin", format: FmtR, class: ClassFloatAdd, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFmax:   {name: "fmax", format: FmtR, class: ClassFloatAdd, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true, fpRd: true},
	OpFabs:   {name: "fabs", format: FmtR, class: ClassFloatAdd, readsRs1: true, writesRd: true, fpRs1: true, fpRd: true},
	OpFneg:   {name: "fneg", format: FmtR, class: ClassFloatAdd, readsRs1: true, writesRd: true, fpRs1: true, fpRd: true},
	OpFmv:    {name: "fmv", format: FmtR, class: ClassFloatAdd, readsRs1: true, writesRd: true, fpRs1: true, fpRd: true},
	OpFcvtDW: {name: "fcvt.d.w", format: FmtR, class: ClassFloatCvt, readsRs1: true, writesRd: true, fpRd: true},
	OpFcvtWD: {name: "fcvt.w.d", format: FmtR, class: ClassFloatCvt, readsRs1: true, writesRd: true, fpRs1: true},
	OpFeq:    {name: "feq", format: FmtR, class: ClassFloatCvt, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true},
	OpFlt:    {name: "flt", format: FmtR, class: ClassFloatCvt, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true},
	OpFle:    {name: "fle", format: FmtR, class: ClassFloatCvt, readsRs1: true, readsRs2: true, writesRd: true, fpRs1: true, fpRs2: true},

	OpEcall:  {name: "ecall", format: FmtI, class: ClassSystem, isSystem: true},
	OpEbreak: {name: "ebreak", format: FmtI, class: ClassSystem, isSystem: true},
	OpCsrrw:  {name: "csrrw", format: FmtI, class: ClassSystem, readsRs1: true, writesRd: true, isSystem: true},
	OpCsrrs:  {name: "csrrs", format: FmtI, class: ClassSystem, readsRs1: true, writesRd: true, isSystem: true},
	OpWfi:    {name: "wfi", format: FmtI, class: ClassSystem, isSystem: true},
	OpMret:   {name: "mret", format: FmtI, class: ClassSystem, isSystem: true, isJump: true},
}

// NumOps is the number of defined opcodes including OpInvalid.
const NumOps = int(opCount)

// Name returns the assembler mnemonic of the opcode.
func (op Op) Name() string {
	if int(op) >= NumOps {
		return "op?"
	}
	return opTable[op].name
}

// Format returns the encoding format of the opcode.
func (op Op) Format() Format { return opTable[op].format }

// Class returns the functional-unit class of the opcode.
func (op Op) Class() Class { return opTable[op].class }

// Valid reports whether op is a defined opcode other than OpInvalid.
func (op Op) Valid() bool { return op > OpInvalid && int(op) < NumOps }

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); int(op) < NumOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName returns the opcode for an assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// OpMeta is the exported, read-only metadata of one opcode: everything a
// program generator (internal/conformance) needs to build a structurally
// valid instruction without duplicating the opcode table.
type OpMeta struct {
	Op     Op
	Name   string
	Format Format
	Class  Class

	// Operand usage. The Fp* flags mark operands naming f registers.
	ReadsRs1 bool
	ReadsRs2 bool
	WritesRd bool
	FpRs1    bool
	FpRs2    bool
	FpRd     bool

	// Behavioural grouping.
	IsLoad   bool
	IsStore  bool
	IsBranch bool // conditional control flow
	IsJump   bool // unconditional control flow
	IsSystem bool

	// MemSize is the bytes moved by loads/stores (0 otherwise).
	MemSize int
}

// Meta returns the opcode's exported metadata. Meta of an out-of-range
// opcode returns OpInvalid's metadata.
func (op Op) Meta() OpMeta {
	if int(op) >= NumOps {
		op = OpInvalid
	}
	in := &opTable[op]
	return OpMeta{
		Op:       op,
		Name:     in.name,
		Format:   in.format,
		Class:    in.class,
		ReadsRs1: in.readsRs1,
		ReadsRs2: in.readsRs2,
		WritesRd: in.writesRd,
		FpRs1:    in.fpRs1,
		FpRs2:    in.fpRs2,
		FpRd:     in.fpRd,
		IsLoad:   in.isLoad,
		IsStore:  in.isStore,
		IsBranch: in.isBranch,
		IsJump:   in.isJump,
		IsSystem: in.isSystem,
		MemSize:  int(in.memSize),
	}
}

// Opcodes returns every defined opcode except OpInvalid, in numeric order.
func Opcodes() []Op {
	out := make([]Op, 0, NumOps-1)
	for op := Op(1); int(op) < NumOps; op++ {
		out = append(out, op)
	}
	return out
}
