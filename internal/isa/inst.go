package isa

import "fmt"

// Word is one encoded KISA instruction.
type Word uint32

// InstBytes is the size of every KISA instruction in memory.
const InstBytes = 4

// Encoding layout. All instructions place the 7-bit opcode in bits [31:25].
// The remaining 25 bits are format specific; see Format constants.
const (
	opShift   = 25
	aShift    = 20 // rd (R/I/U/J), rs2 (S), rs1 (B)
	bShift    = 15 // rs1 (R/I/S), rs2 (B)
	cShift    = 10 // rs2 (R)
	regMask   = 0x1f
	imm15Bits = 15
	imm20Bits = 20
)

// Immediate ranges by format.
const (
	MaxImm15 = 1<<(imm15Bits-1) - 1
	MinImm15 = -(1 << (imm15Bits - 1))
	MaxImm20 = 1<<(imm20Bits-1) - 1
	MinImm20 = -(1 << (imm20Bits - 1))
)

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// info returns the opcode metadata.
func (i Inst) info() *opInfo { return &opTable[i.Op] }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return i.info().isLoad }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.info().isStore }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool { return i.info().isLoad || i.info().isStore }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.info().isBranch }

// IsJump reports whether the instruction is an unconditional control transfer.
func (i Inst) IsJump() bool { return i.info().isJump }

// IsControl reports whether the instruction can redirect the PC.
func (i Inst) IsControl() bool { return i.info().isBranch || i.info().isJump }

// IsIndirect reports whether the control target comes from a register.
func (i Inst) IsIndirect() bool { return i.Op == OpJalr || i.Op == OpMret }

// IsSystem reports whether the instruction is a system instruction.
func (i Inst) IsSystem() bool { return i.info().isSystem }

// MemSize returns the bytes moved by a load/store (0 otherwise).
func (i Inst) MemSize() int { return int(i.info().memSize) }

// Class returns the functional-unit class.
func (i Inst) Class() Class { return i.info().class }

// RegID names one architectural register across both files: integer
// registers are 0..31, float registers are 32..63.
type RegID uint8

// Register-file split for RegID values.
const (
	IntRegBase  RegID = 0
	FpRegBase   RegID = 32
	NumArchRegs       = 64
)

// InvalidReg is returned when an operand slot is unused.
const InvalidReg RegID = 255

// Dest returns the destination register of the instruction, or InvalidReg.
// Writes to x0 are reported as InvalidReg since they are architectural
// no-ops.
func (i Inst) Dest() RegID {
	in := i.info()
	if !in.writesRd {
		return InvalidReg
	}
	if in.fpRd {
		return FpRegBase + RegID(i.Rd)
	}
	if i.Rd == 0 {
		return InvalidReg
	}
	return RegID(i.Rd)
}

// Srcs appends the source registers of the instruction to dst and returns
// it. Reads of x0 are included (they are real reads of a zero register).
func (i Inst) Srcs(dst []RegID) []RegID {
	in := i.info()
	if in.readsRs1 {
		if in.fpRs1 {
			dst = append(dst, FpRegBase+RegID(i.Rs1))
		} else {
			dst = append(dst, RegID(i.Rs1))
		}
	}
	if in.readsRs2 {
		if in.fpRs2 {
			dst = append(dst, FpRegBase+RegID(i.Rs2))
		} else {
			dst = append(dst, RegID(i.Rs2))
		}
	}
	return dst
}

// Decode decodes an instruction word. Unknown opcodes decode to an Inst with
// Op == OpInvalid.
func Decode(w Word) Inst {
	op := Op(w >> opShift)
	if int(op) >= NumOps {
		return Inst{Op: OpInvalid}
	}
	var in Inst
	in.Op = op
	a := uint8(w >> aShift & regMask)
	b := uint8(w >> bShift & regMask)
	switch op.Format() {
	case FmtR:
		in.Rd = a
		in.Rs1 = b
		in.Rs2 = uint8(w >> cShift & regMask)
	case FmtI:
		in.Rd = a
		in.Rs1 = b
		in.Imm = signExtend(uint32(w)&0x7fff, imm15Bits)
	case FmtS:
		in.Rs2 = a
		in.Rs1 = b
		in.Imm = signExtend(uint32(w)&0x7fff, imm15Bits)
	case FmtB:
		in.Rs1 = a
		in.Rs2 = b
		in.Imm = signExtend(uint32(w)&0x7fff, imm15Bits)
	case FmtU, FmtJ:
		in.Rd = a
		in.Imm = signExtend(uint32(w)&0xfffff, imm20Bits)
	}
	return in
}

// Encode encodes an instruction, validating register indices and immediate
// ranges.
func Encode(in Inst) (Word, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode invalid opcode %d", in.Op)
	}
	if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 {
		return 0, fmt.Errorf("isa: %s register index out of range", in.Op.Name())
	}
	w := Word(in.Op) << opShift
	switch in.Op.Format() {
	case FmtR:
		if in.Imm != 0 {
			return 0, fmt.Errorf("isa: %s takes no immediate", in.Op.Name())
		}
		w |= Word(in.Rd)<<aShift | Word(in.Rs1)<<bShift | Word(in.Rs2)<<cShift
	case FmtI:
		if in.Imm < MinImm15 || in.Imm > MaxImm15 {
			return 0, fmt.Errorf("isa: %s immediate %d out of range", in.Op.Name(), in.Imm)
		}
		w |= Word(in.Rd)<<aShift | Word(in.Rs1)<<bShift | Word(uint32(in.Imm)&0x7fff)
	case FmtS:
		if in.Imm < MinImm15 || in.Imm > MaxImm15 {
			return 0, fmt.Errorf("isa: %s immediate %d out of range", in.Op.Name(), in.Imm)
		}
		w |= Word(in.Rs2)<<aShift | Word(in.Rs1)<<bShift | Word(uint32(in.Imm)&0x7fff)
	case FmtB:
		if in.Imm < MinImm15 || in.Imm > MaxImm15 {
			return 0, fmt.Errorf("isa: %s offset %d out of range", in.Op.Name(), in.Imm)
		}
		w |= Word(in.Rs1)<<aShift | Word(in.Rs2)<<bShift | Word(uint32(in.Imm)&0x7fff)
	case FmtU, FmtJ:
		if in.Imm < MinImm20 || in.Imm > MaxImm20 {
			return 0, fmt.Errorf("isa: %s immediate %d out of range", in.Op.Name(), in.Imm)
		}
		w |= Word(in.Rd)<<aShift | Word(uint32(in.Imm)&0xfffff)
	}
	return w, nil
}

// MustEncode encodes an instruction and panics on error. It is intended for
// program builders whose operands are known constants.
func MustEncode(in Inst) Word {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// String disassembles the instruction.
func (i Inst) String() string {
	in := i.info()
	switch i.Op.Format() {
	case FmtR:
		switch {
		case in.readsRs2:
			return fmt.Sprintf("%s %s, %s, %s", in.name, regName(i.Rd, in.fpRd), regName(i.Rs1, in.fpRs1), regName(i.Rs2, in.fpRs2))
		case in.readsRs1:
			return fmt.Sprintf("%s %s, %s", in.name, regName(i.Rd, in.fpRd), regName(i.Rs1, in.fpRs1))
		default:
			return in.name
		}
	case FmtI:
		switch {
		case in.isLoad:
			return fmt.Sprintf("%s %s, %d(%s)", in.name, regName(i.Rd, in.fpRd), i.Imm, regName(i.Rs1, false))
		case i.Op == OpJalr:
			return fmt.Sprintf("%s %s, %d(%s)", in.name, regName(i.Rd, false), i.Imm, regName(i.Rs1, false))
		case i.Op == OpCsrrw || i.Op == OpCsrrs:
			return fmt.Sprintf("%s %s, %#x, %s", in.name, regName(i.Rd, false), uint32(i.Imm), regName(i.Rs1, false))
		case in.readsRs1:
			return fmt.Sprintf("%s %s, %s, %d", in.name, regName(i.Rd, false), regName(i.Rs1, false), i.Imm)
		default:
			return in.name
		}
	case FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", in.name, regName(i.Rs2, in.fpRs2), i.Imm, regName(i.Rs1, false))
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", in.name, regName(i.Rs1, false), regName(i.Rs2, false), i.Imm)
	case FmtU:
		return fmt.Sprintf("%s %s, %#x", in.name, regName(i.Rd, false), uint32(i.Imm)&0xfffff)
	case FmtJ:
		return fmt.Sprintf("%s %s, %d", in.name, regName(i.Rd, false), i.Imm)
	}
	return in.name
}

func regName(r uint8, fp bool) string {
	if fp {
		return fmt.Sprintf("f%d", r)
	}
	return fmt.Sprintf("x%d", r)
}
