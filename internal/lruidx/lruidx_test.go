package lruidx

import (
	"math/rand"
	"testing"
)

// naiveLRU is the reference: a plain scan-based fully-associative LRU
// file, structured exactly like the TLBs this package replaced.
type naiveLRU struct {
	entries []struct {
		key   uint64
		lru   uint64
		valid bool
	}
	seq uint64
}

func newNaive(n int) *naiveLRU {
	l := &naiveLRU{}
	l.entries = make([]struct {
		key   uint64
		lru   uint64
		valid bool
	}, n)
	return l
}

// access returns (hit, evictedKey, evicted) for one reference.
func (l *naiveLRU) access(key uint64) (bool, uint64, bool) {
	l.seq++
	victim := &l.entries[0]
	for i := range l.entries {
		e := &l.entries[i]
		if e.valid && e.key == key {
			e.lru = l.seq
			return true, 0, false
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	evicted, wasEvict := victim.key, victim.valid
	victim.key = key
	victim.valid = true
	victim.lru = l.seq
	return false, evicted, wasEvict
}

// access drives the index with the TLB-style hit-or-insert protocol.
func access(ix *Index, key uint64) (bool, uint64, bool) {
	if slot, ok := ix.Lookup(key); ok {
		ix.Touch(slot)
		return true, 0, false
	}
	_, ev, wasEvict := ix.Insert(key)
	return false, ev, wasEvict
}

func TestBasicLRU(t *testing.T) {
	ix := New(2)
	if hit, _, _ := access(ix, 1); hit {
		t.Fatal("cold hit")
	}
	if hit, _, _ := access(ix, 1); !hit {
		t.Fatal("warm miss")
	}
	access(ix, 2)
	access(ix, 1) // 2 is now LRU
	if _, ev, wasEvict := access(ix, 3); !wasEvict || ev != 2 {
		t.Fatalf("evicted %d (%v), want 2", ev, wasEvict)
	}
	if hit, _, _ := access(ix, 2); hit {
		t.Fatal("evicted key still resident")
	}
	if ix.Len() != 2 || ix.Cap() != 2 {
		t.Fatalf("len %d cap %d", ix.Len(), ix.Cap())
	}
}

// TestDifferentialVsNaive hammers the index with random key streams over
// several capacities and footprints, requiring hit-for-hit and
// victim-for-victim equality with the scan-based reference.
func TestDifferentialVsNaive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1536} {
		for _, footprint := range []uint64{2, 8, uint64(n), uint64(2 * n), uint64(8 * n)} {
			if footprint == 0 {
				continue
			}
			rng := rand.New(rand.NewSource(int64(n)*1315423911 + int64(footprint)))
			ix := New(n)
			ref := newNaive(n)
			for i := 0; i < 20000; i++ {
				// Page-aligned keys mimic real TLB traffic; a skewed
				// distribution mixes hot reuse with cold misses.
				key := (rng.Uint64() % footprint) << 12
				if rng.Intn(4) == 0 {
					key = (rng.Uint64() % 4) << 12 // hot subset
				}
				gotHit, gotEv, gotWas := access(ix, key)
				wantHit, wantEv, wantWas := ref.access(key)
				if gotHit != wantHit || gotWas != wantWas || (gotWas && gotEv != wantEv) {
					t.Fatalf("n=%d footprint=%d step %d key %#x: got (%v,%#x,%v) want (%v,%#x,%v)",
						n, footprint, i, key, gotHit, gotEv, gotWas, wantHit, wantEv, wantWas)
				}
			}
			if ix.Len() > ix.Cap() {
				t.Fatalf("len %d exceeds cap %d", ix.Len(), ix.Cap())
			}
		}
	}
}

// TestAdversarialCollisions forces long probe chains and backward-shift
// deletions by using keys that all hash near each other.
func TestAdversarialCollisions(t *testing.T) {
	const n = 8
	ix := New(n)
	ref := newNaive(n)
	// Keys differing only in high bits collide heavily after the
	// multiplicative hash truncation for a 32-entry table.
	keys := make([]uint64, 0, 64)
	for i := uint64(0); i < 64; i++ {
		keys = append(keys, i<<58|0xABC)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		key := keys[rng.Intn(len(keys))]
		gotHit, gotEv, gotWas := access(ix, key)
		wantHit, wantEv, wantWas := ref.access(key)
		if gotHit != wantHit || gotWas != wantWas || (gotWas && gotEv != wantEv) {
			t.Fatalf("step %d key %#x: got (%v,%#x,%v) want (%v,%#x,%v)",
				i, key, gotHit, gotEv, gotWas, wantHit, wantEv, wantWas)
		}
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
