// Package lruidx provides an exact-LRU replacement index over a fixed
// number of slots with O(1) lookup, touch, and insert-with-eviction.
//
// It replaces the O(entries) linear scans that fully-associative LRU
// structures (TLBs) otherwise pay on every access: a 1.5k-entry STLB
// scanned per lookup was the single hottest path of the whole
// co-simulation. The index keeps the exact same observable behaviour as
// the scan — a key hits iff it is resident, and the victim when full is
// always the least-recently-used key — so replacement decisions are
// bit-identical (proven by the differential tests in internal/uarch and
// internal/mem).
//
// Internals: an intrusive doubly-linked list over the slot file orders
// keys from LRU (head) to MRU (tail), and an open-addressed hash table
// with linear probing and backward-shift deletion maps key → slot. The
// table is sized to at most 50% load so probe chains stay short and
// deletion terminates.
package lruidx

// slotEnt is one resident key with its position in the LRU list.
type slotEnt struct {
	key        uint64
	prev, next int32
}

// tableEnt is one open-addressing cell of the key → slot table.
type tableEnt struct {
	key  uint64
	slot int32
	used bool
}

// Index is an exact-LRU index over a fixed slot file. The zero value is
// not usable; construct with New.
type Index struct {
	slots      []slotEnt
	head, tail int32 // LRU .. MRU chain ends; -1 when empty
	nextFree   int32 // slots fill top-down; -1 once every slot is resident

	table      []tableEnt
	tableShift uint // 64 - log2(len(table)), for multiplicative hashing
	mask       uint64
}

// New builds an index with n slots.
func New(n int) *Index {
	if n <= 0 {
		panic("lruidx: need at least one slot")
	}
	tableLen := 1
	for tableLen < 2*n {
		tableLen <<= 1
	}
	shift := uint(64)
	for l := tableLen; l > 1; l >>= 1 {
		shift--
	}
	return &Index{
		slots:      make([]slotEnt, n),
		head:       -1,
		tail:       -1,
		nextFree:   int32(n - 1),
		table:      make([]tableEnt, tableLen),
		tableShift: shift,
		mask:       uint64(tableLen - 1),
	}
}

// Cap returns the slot count.
func (ix *Index) Cap() int { return len(ix.slots) }

// Len returns how many keys are resident.
func (ix *Index) Len() int { return len(ix.slots) - 1 - int(ix.nextFree) }

// Key returns the key resident in slot (tests and debugging).
func (ix *Index) Key(slot int32) uint64 { return ix.slots[slot].key }

// home is the preferred table position of key (Fibonacci hashing: the
// high bits of the product are well mixed even for page-aligned keys).
func (ix *Index) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> ix.tableShift
}

// Lookup returns the slot holding key, if resident. It does not touch
// the LRU order.
func (ix *Index) Lookup(key uint64) (int32, bool) {
	for i := ix.home(key); ix.table[i].used; i = (i + 1) & ix.mask {
		if ix.table[i].key == key {
			return ix.table[i].slot, true
		}
	}
	return 0, false
}

// Touch marks slot most-recently-used.
func (ix *Index) Touch(slot int32) {
	if ix.tail == slot {
		return
	}
	ix.unlink(slot)
	ix.pushMRU(slot)
}

// Insert makes key resident and most-recently-used. When every slot is
// occupied it evicts the least-recently-used key and returns it. The
// caller must ensure key is not already resident (Lookup first).
func (ix *Index) Insert(key uint64) (slot int32, evicted uint64, wasEvict bool) {
	if ix.nextFree >= 0 {
		slot = ix.nextFree
		ix.nextFree--
	} else {
		slot = ix.head
		evicted = ix.slots[slot].key
		wasEvict = true
		ix.tableDelete(evicted)
		ix.unlink(slot)
	}
	ix.slots[slot].key = key
	ix.pushMRU(slot)
	ix.tableInsert(key, slot)
	return slot, evicted, wasEvict
}

func (ix *Index) unlink(s int32) {
	e := &ix.slots[s]
	if e.prev >= 0 {
		ix.slots[e.prev].next = e.next
	} else {
		ix.head = e.next
	}
	if e.next >= 0 {
		ix.slots[e.next].prev = e.prev
	} else {
		ix.tail = e.prev
	}
}

func (ix *Index) pushMRU(s int32) {
	e := &ix.slots[s]
	e.prev, e.next = ix.tail, -1
	if ix.tail >= 0 {
		ix.slots[ix.tail].next = s
	} else {
		ix.head = s
	}
	ix.tail = s
}

func (ix *Index) tableInsert(key uint64, slot int32) {
	i := ix.home(key)
	for ix.table[i].used {
		i = (i + 1) & ix.mask
	}
	ix.table[i] = tableEnt{key: key, slot: slot, used: true}
}

// tableDelete removes key with backward-shift deletion, so probe chains
// stay tombstone-free and lookups never degrade.
func (ix *Index) tableDelete(key uint64) {
	i := ix.home(key)
	for ix.table[i].key != key || !ix.table[i].used {
		i = (i + 1) & ix.mask
	}
	j := i
	for {
		j = (j + 1) & ix.mask
		if !ix.table[j].used {
			break
		}
		k := ix.home(ix.table[j].key)
		// table[j] may move into the hole at i only if its home does not
		// lie cyclically inside (i, j] — otherwise probing would no
		// longer find it.
		if (j > i && (k <= i || k > j)) || (j < i && (k <= i && k > j)) {
			ix.table[i] = ix.table[j]
			i = j
		}
	}
	ix.table[i].used = false
}
