// Package ckptcache is a content-addressed on-disk cache for guest
// checkpoints. Sweep-shaped experiment suites (figs 10–14) run many cells
// that share a workload and config prefix and differ only in the host
// platform or seed; each such family needs the expensive Atomic
// fast-forward exactly once, after which every cell restores from the
// cache.
//
// Integrity is enforced on the read path, not trusted from the write path:
// every entry carries the FNV-64a hash of its payload, and Get re-hashes
// what it read before returning it. A bit-flipped, truncated, or
// version-skewed entry is evicted and reported as a miss, so a corrupt
// cache can cost time but can never inject garbage state into a
// simulation. (The payload itself is a core.Checkpoint JSON document,
// which DecodeCheckpoint validates again downstream — the cache check
// simply fails faster and keeps the cache self-cleaning.)
package ckptcache

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// Key identifies one checkpoint: which workload was fast-forwarded, under
// which execution-relevant guest config, in which serialization format, up
// to which guest tick. Anything that can change the bytes a fast-forward
// produces MUST be part of the key; anything that cannot (the RNG seed —
// pinned by TestCheckpointSeedInvariance — or the host platform, which the
// guest never observes) deliberately is not, so config families share
// entries.
type Key struct {
	// Workload names the guest program (including its scale), e.g.
	// "sieve@1024".
	Workload string
	// ConfigPrefix is the canonical rendering of every GuestConfig field
	// that affects execution (see simpoint.ConfigPrefix).
	ConfigPrefix string
	// FormatVersion is core.CheckpointVersion at write time; bumping the
	// checkpoint format orphans old entries instead of mis-restoring them.
	FormatVersion int
	// Tick is the guest time of the checkpoint.
	Tick uint64
}

// ID returns the 64-bit content address of the key: FNV-64a over the
// fields with strings length-prefixed, so ("ab","c") and ("a","bc") — or a
// workload whose name ends in digits and a tick — cannot collide by
// concatenation.
func (k Key) ID() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(s string) {
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	put(k.Workload)
	put(k.ConfigPrefix)
	binary.LittleEndian.PutUint64(b[:], uint64(k.FormatVersion))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], k.Tick)
	h.Write(b[:])
	return h.Sum64()
}

// Name returns the entry's file name within the cache directory.
func (k Key) Name() string { return fmt.Sprintf("%016x.ckpt", k.ID()) }

// entry framing: magic, then the key ID (so a hash-colliding rename or a
// file copied between directories is caught), then the payload hash, then
// the payload.
const magic = "g5ckpt01"

const headerBytes = len(magic) + 8 + 8

// Stats counts cache outcomes since Open.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Corrupt uint64 // subset of Misses: entries evicted on a failed verify
}

// Cache is a directory of verified checkpoint entries. The zero value and
// the nil pointer are valid "no cache" caches: Get always misses and Put
// is a no-op, so callers thread an optional *Cache without nil checks.
// Methods are safe for concurrent use; concurrent Puts of the same key are
// idempotent (last atomic rename wins, both writing identical content).
// The stat counters sit behind a mutex, not atomics: every bump is
// adjacent to file I/O, so contention is irrelevant.
type Cache struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory ("" for the no-cache cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Stats returns a snapshot of the hit/miss/corruption counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// count applies one outcome to the stat counters.
func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

func payloadHash(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// Get returns the verified payload for key, or (nil, false) on any miss —
// including a present-but-corrupt entry, which is evicted so the slot
// heals on the next Put. Corruption is never an error: the contract is
// that a damaged cache degrades to re-simulation.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if c == nil || c.dir == "" {
		return nil, false
	}
	path := filepath.Join(c.dir, key.Name())
	data, err := os.ReadFile(path)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	payload, ok := verify(data, key.ID())
	if !ok {
		// Evict: a corrupt entry must not be offered again.
		os.Remove(path)
		c.count(func(s *Stats) { s.Corrupt++; s.Misses++ })
		return nil, false
	}
	c.count(func(s *Stats) { s.Hits++ })
	return payload, true
}

// verify checks the framing and content hash, returning the payload.
func verify(data []byte, wantID uint64) ([]byte, bool) {
	if len(data) < headerBytes || string(data[:len(magic)]) != magic {
		return nil, false
	}
	id := binary.LittleEndian.Uint64(data[len(magic):])
	sum := binary.LittleEndian.Uint64(data[len(magic)+8:])
	payload := data[headerBytes:]
	if id != wantID || payloadHash(payload) != sum {
		return nil, false
	}
	return payload, true
}

// Put stores payload under key. Failures are returned but are safe to
// ignore: a failed Put only costs a future re-simulation. The write is
// atomic (temp file + rename), so a reader never observes a partial entry
// and a crash mid-Put leaves at most a stale temp file.
func (c *Cache) Put(key Key, payload []byte) error {
	if c == nil || c.dir == "" {
		return nil
	}
	buf := make([]byte, headerBytes+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[len(magic):], key.ID())
	binary.LittleEndian.PutUint64(buf[len(magic)+8:], payloadHash(payload))
	copy(buf[headerBytes:], payload)

	tmp, err := os.CreateTemp(c.dir, key.Name()+".tmp*")
	if err != nil {
		return fmt.Errorf("ckptcache: %w", err)
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckptcache: writing %s: write=%v close=%v", key.Name(), werr, cerr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, key.Name())); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckptcache: %w", err)
	}
	return nil
}
