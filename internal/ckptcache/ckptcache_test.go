package ckptcache

import (
	"os"
	"path/filepath"
	"testing"
)

func testKey() Key {
	return Key{Workload: "sieve@1024", ConfigPrefix: "cpu=atomic mode=se", FormatVersion: 1, Tick: 123456}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"version":1,"fake":"checkpoint"}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 0 corrupt", st)
	}
}

// TestBitFlipEvicted is the acceptance-criteria property: a bit-flipped
// entry must be detected by the content hash, reported as a miss, and
// removed — never returned as a payload.
func TestBitFlipEvicted(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey()
	payload := []byte(`{"version":1,"mem":{"size":4096}}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte position in turn: header, hashes, payload
	// — all must be caught.
	for pos := 0; pos < len(raw); pos++ {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x10
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(key); ok {
			t.Fatalf("bit flip at byte %d not detected; Get returned %q", pos, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry at byte %d not evicted", pos)
		}
	}
	if st := c.Stats(); st.Corrupt != uint64(len(raw)) {
		t.Fatalf("corrupt count %d, want %d", st.Corrupt, len(raw))
	}
}

func TestTruncatedEvicted(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey()
	if err := c.Put(key, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Name())
	raw, _ := os.ReadFile(path)
	for _, n := range []int{0, 3, len(magic), headerBytes - 1, headerBytes, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

// TestKeyMismatchRejected: an entry copied or renamed onto another key's
// file name carries the wrong embedded key ID and must miss.
func TestKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	a := testKey()
	b := testKey()
	b.Tick++
	if err := c.Put(a, []byte("checkpoint-for-a")); err != nil {
		t.Fatal(err)
	}
	// Masquerade a's entry as b's.
	raw, _ := os.ReadFile(filepath.Join(dir, a.Name()))
	if err := os.WriteFile(filepath.Join(dir, b.Name()), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("entry with mismatched key ID accepted")
	}
}

func TestKeyDerivation(t *testing.T) {
	base := testKey()
	vary := []Key{
		{Workload: "other@1024", ConfigPrefix: base.ConfigPrefix, FormatVersion: base.FormatVersion, Tick: base.Tick},
		{Workload: base.Workload, ConfigPrefix: "cpu=atomic mode=fs", FormatVersion: base.FormatVersion, Tick: base.Tick},
		{Workload: base.Workload, ConfigPrefix: base.ConfigPrefix, FormatVersion: 2, Tick: base.Tick},
		{Workload: base.Workload, ConfigPrefix: base.ConfigPrefix, FormatVersion: base.FormatVersion, Tick: base.Tick + 1},
		// Shard layout rides in the prefix (simpoint.ConfigPrefix appends
		// shards=<layout>): sharded and serial runs must never share entries.
		{Workload: base.Workload, ConfigPrefix: base.ConfigPrefix + " shards=cpu+dev|mem",
			FormatVersion: base.FormatVersion, Tick: base.Tick},
	}
	for i, k := range vary {
		if k.ID() == base.ID() {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	// Length-prefixing: shifting bytes between fields must change the ID.
	shifted := Key{Workload: base.Workload + "c", ConfigPrefix: base.ConfigPrefix[1:],
		FormatVersion: base.FormatVersion, Tick: base.Tick}
	shifted2 := base
	shifted2.Workload, shifted2.ConfigPrefix = base.Workload, base.ConfigPrefix
	if shifted.ID() == base.ID() {
		t.Error("field-boundary shift collides")
	}
	if base.ID() != shifted2.ID() {
		t.Error("identical keys disagree")
	}
	if base.Name() != shifted2.Name() {
		t.Error("identical keys name different files")
	}
}

// TestNilSafety: the nil cache is the documented "no cache" mode.
func TestNilSafety(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(testKey()); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put(testKey(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" || c.Stats() != (Stats{}) {
		t.Fatal("nil cache leaked state")
	}
}

func TestPutOverwrites(t *testing.T) {
	c, _ := Open(t.TempDir())
	key := testKey()
	if err := c.Put(key, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || string(got) != "second" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
}
