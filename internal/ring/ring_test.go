package ring

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// seqRecord builds the i-th record of a deterministic sequence spanning all
// three ops so decode paths and flag bits are all exercised.
func seqRecord(i uint64) Record {
	switch i % 3 {
	case 0:
		return Record{Op: OpFetch, Addr: i, A: uint32(i % 97), B: uint32(i % 11)}
	case 1:
		return Record{Op: OpBranch, Addr: i, Arg: i * 3, Flags: uint8(i) & (FlagTaken | FlagIndirect)}
	default:
		return Record{Op: OpData, Addr: i, A: uint32(i % 64), Flags: uint8(i) & FlagWrite}
	}
}

// produce pushes n sequence records through r, committing a batch every
// flushEvery records (and on the tail), then closes the ring. flushEvery=0
// means only full batches are committed.
func produce(r *Ring, n uint64, flushEvery int) {
	var cur *Batch
	k := 0
	for i := uint64(0); i < n; i++ {
		if cur == nil {
			if cur = r.Reserve(); cur == nil {
				return // consumer aborted
			}
		}
		full := cur.Append(seqRecord(i))
		k++
		if full || (flushEvery > 0 && k >= flushEvery) {
			r.Commit()
			cur, k = nil, 0
		}
	}
	if cur != nil {
		r.Commit()
	}
	r.Close()
}

// consume drains r, verifying records arrive exactly in sequence order, and
// returns how many were seen.
func consume(t *testing.T, r *Ring) uint64 {
	t.Helper()
	var next uint64
	for {
		b := r.Acquire()
		if b == nil {
			return next
		}
		for _, rec := range b.Records() {
			if want := seqRecord(next); rec != want {
				t.Fatalf("record %d: got %+v, want %+v", next, rec, want)
			}
			next++
		}
		r.Release()
	}
}

// TestRingEdgeCases is the table-driven sweep over the shapes that have
// historically broken SPSC rings: minimal capacity, partial final batches,
// exact multiples of the batch size, and empty streams.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		slots      int
		records    uint64
		flushEvery int
	}{
		{"capacity1_fullBatches", 1, 4 * BatchRecords, 0},
		{"capacity1_tinyFlushes", 1, 1000, 3},
		{"capacity2_partialTail", 2, 2*BatchRecords + 17, 0},
		{"capacity8_exactMultiple", 8, 8 * BatchRecords, 0},
		{"capacity8_flushEveryOne", 8, 257, 1},
		{"emptyStream", 4, 0, 0},
		{"singleRecord", 4, 1, 0},
		{"roundsUpOddCapacity", 3, 3 * BatchRecords, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New(tc.slots)
			if c := r.Cap(); c&(c-1) != 0 || c < 1 {
				t.Fatalf("Cap()=%d is not a positive power of two", c)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				produce(r, tc.records, tc.flushEvery)
			}()
			got := consume(t, r)
			<-done
			if got != tc.records {
				t.Fatalf("consumed %d records, want %d", got, tc.records)
			}
			if !r.Drained() {
				t.Fatal("ring not drained after close")
			}
		})
	}
}

// TestRingDoubleClose checks Close is idempotent (from either side of the
// producer's lifecycle) and that a consumer sees exactly the records
// committed before the first Close.
func TestRingDoubleClose(t *testing.T) {
	r := New(2)
	b := r.Reserve()
	for i := uint64(0); i < 5; i++ {
		b.Append(seqRecord(i))
	}
	r.Commit()
	r.Close()
	r.Close() // must not panic or wedge
	if got := consume(t, r); got != 5 {
		t.Fatalf("consumed %d records, want 5", got)
	}
	if r.Acquire() != nil {
		t.Fatal("Acquire after drain+close should keep returning nil")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err() = %v on a cleanly closed ring", err)
	}
}

// TestRingConsumerAbort checks consumer-side error propagation: a parked
// *and* an unparked producer must both observe the abort, and Err must
// return the consumer's error.
func TestRingConsumerAbort(t *testing.T) {
	sentinel := errors.New("uarch model rejected record")

	t.Run("unparkedProducer", func(t *testing.T) {
		r := New(4)
		r.Abort(sentinel)
		if r.Reserve() != nil {
			t.Fatal("Reserve after Abort should return nil")
		}
		if got := r.Err(); !errors.Is(got, sentinel) {
			t.Fatalf("Err() = %v, want %v", got, sentinel)
		}
	})

	t.Run("parkedProducer", func(t *testing.T) {
		r := New(1) // one slot: the second Reserve parks
		b := r.Reserve()
		b.Append(seqRecord(0))
		r.Commit()
		parked := make(chan *Batch)
		go func() { parked <- r.Reserve() }()
		r.Abort(sentinel)
		if got := <-parked; got != nil {
			t.Fatal("parked Reserve should return nil on Abort")
		}
		if got := r.Err(); !errors.Is(got, sentinel) {
			t.Fatalf("Err() = %v, want %v", got, sentinel)
		}
	})

	t.Run("firstAbortWins", func(t *testing.T) {
		r := New(1)
		r.Abort(sentinel)
		r.Abort(errors.New("second"))
		if got := r.Err(); !errors.Is(got, sentinel) {
			t.Fatalf("Err() = %v, want first abort error %v", got, sentinel)
		}
	})

	t.Run("nilErrorGetsDefault", func(t *testing.T) {
		r := New(1)
		r.Abort(nil)
		if r.Err() == nil {
			t.Fatal("Abort(nil) must still make Err() non-nil")
		}
	})
}

// TestRingInOrderDelivery is the testing/quick property: for any stream
// length, ring capacity, and producer flush cadence, the consumer sees
// exactly the produced sequence — nothing lost, duplicated, or reordered.
func TestRingInOrderDelivery(t *testing.T) {
	prop := func(lenSeed uint16, capSeed uint8, flushSeed uint8) bool {
		n := uint64(lenSeed) % (3 * BatchRecords)
		slots := 1 + int(capSeed)%8
		flushEvery := int(flushSeed) % 65 // 0 = full batches only
		r := New(slots)
		done := make(chan struct{})
		go func() {
			defer close(done)
			produce(r, n, flushEvery)
		}()
		got := consume(t, r)
		<-done
		return got == n && r.Drained()
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRingStress is the dedicated producer/consumer stress test for the CI
// race job: a long stream through a deliberately tiny ring with a
// frequently-parking producer and consumer, designed so that any missing
// happens-before edge between slot writes and reads, or any lost-wakeup
// window in the park/unpark handshake, gets hit thousands of times per run
// under -race.
func TestRingStress(t *testing.T) {
	records := uint64(2_000_000)
	if testing.Short() {
		records = 200_000
	}
	for _, slots := range []int{1, 2, 8} {
		t.Run(map[int]string{1: "slots1", 2: "slots2", 8: "slots8"}[slots], func(t *testing.T) {
			r := New(slots)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Small flushes keep both sides crossing the park/unpark
				// edges constantly instead of settling into big batches.
				produce(r, records, 7)
			}()
			got := consume(t, r)
			wg.Wait()
			if got != records {
				t.Fatalf("consumed %d records, want %d", got, records)
			}
		})
	}
}

// TestRingProducerParksOnFull pins the blocking behaviour itself: with the
// consumer stalled, the producer must park after filling every slot, and
// resume exactly when one is released.
func TestRingProducerParksOnFull(t *testing.T) {
	r := New(2)
	for i := 0; i < r.Cap(); i++ {
		b := r.Reserve()
		b.Append(seqRecord(uint64(i)))
		r.Commit()
	}
	reserved := make(chan *Batch)
	go func() { reserved <- r.Reserve() }()
	select {
	case <-reserved:
		t.Fatal("Reserve returned with the ring full")
	default:
	}
	// Drain one batch; the parked producer must wake.
	if b := r.Acquire(); b == nil {
		t.Fatal("Acquire returned nil on a full ring")
	}
	r.Release()
	if b := <-reserved; b == nil {
		t.Fatal("Reserve returned nil after a slot freed")
	}
}
