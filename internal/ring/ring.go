// Package ring provides the bounded single-producer/single-consumer batch
// ring that decouples the co-simulation's two stages: the guest
// discrete-event simulator plus hostmodel trace synthesis (the producer)
// and the host micro-architecture model (the consumer), each on its own
// goroutine.
//
// Design points, all in service of a lock-free steady state and strict
// FIFO delivery (the determinism argument in DESIGN.md §10):
//
//   - Records are compact tagged structs (one of FetchBlock/Branch/Data),
//     moved in fixed-size Batches that live inside the ring's slot array,
//     so the hot path performs no per-record (or per-batch) allocation.
//   - The producer reserves a slot in place, fills it, and publishes it
//     with a single atomic store of the tail; the consumer acquires with
//     an atomic load and releases by storing the head. Head and tail sit
//     on separate cache lines to avoid false sharing.
//   - Parking is strictly an edge behaviour: a side blocks only when the
//     ring is completely empty (consumer) or completely full (producer),
//     using a Dekker-style parked-flag + buffered-channel handshake. While
//     both sides keep up with each other no channel operation, mutex, or
//     syscall happens at all.
//
// Because there is exactly one producer and one consumer and batches are
// delivered in publication order, the consumer observes every record in
// exactly the order the producer emitted it — which is what makes the
// pipelined co-simulation's statistics bit-identical to the serial path.
package ring

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Op tags the kind of host-trace record.
type Op uint8

// Record kinds, mirroring the three methods of hostmodel.Sink.
const (
	// OpFetch models sequential execution of a code block
	// (Addr=address, A=bytes, B=uops).
	OpFetch Op = iota
	// OpBranch models one executed branch
	// (Addr=pc, Arg=target, Flags carries taken/indirect).
	OpBranch
	// OpData models one data access (Addr=address, A=size, Flags carries
	// write).
	OpData
)

// Record flag bits.
const (
	FlagTaken    uint8 = 1 << iota // branch was taken
	FlagIndirect                   // branch is indirect
	FlagWrite                      // data access is a store
)

// Record is one compact host-trace record: a tagged encoding of one
// hostmodel.Sink call. 32 bytes, no pointers.
type Record struct {
	Addr  uint64 // code address (fetch/branch pc) or data address
	Arg   uint64 // branch target
	A     uint32 // fetch bytes / data size
	B     uint32 // fetch uops
	Op    Op
	Flags uint8
}

// BatchRecords is the capacity of one Batch. At 32 bytes per record a full
// batch is 16 KiB — big enough to amortize the publication atomics down to
// noise, small enough that a handful of in-flight batches stay cache- and
// TLB-resident while crossing cores.
const BatchRecords = 512

// Batch is a fixed-size block of records. Batches are embedded in the
// ring's slot array and reused in place; they are never allocated on the
// hot path.
type Batch struct {
	n   int32
	rec [BatchRecords]Record
}

// Reset empties the batch for refilling.
func (b *Batch) Reset() { b.n = 0 }

// Len returns the number of records currently in the batch.
func (b *Batch) Len() int { return int(b.n) }

// Append adds r and reports whether the batch is now full (i.e. the caller
// must publish it before appending again).
func (b *Batch) Append(r Record) bool {
	b.rec[b.n] = r
	b.n++
	return int(b.n) == len(b.rec)
}

// Records returns the filled prefix of the batch.
func (b *Batch) Records() []Record { return b.rec[:b.n] }

type pad [64]byte

// Ring is a bounded SPSC ring of batches. Exactly one goroutine may call
// the producer methods (Reserve/Commit/Close) and exactly one the consumer
// methods (Acquire/Release/Abort); the two may differ. The zero Ring is
// not usable; construct with New.
type Ring struct {
	slots []Batch
	mask  uint64

	_    pad
	head atomic.Uint64 // next slot the consumer will take
	_    pad
	tail atomic.Uint64 // next slot the producer will fill
	_    pad

	// prodParked/consParked implement the Dekker-style handshake: a side
	// publishes that it is about to sleep, re-checks the condition, then
	// blocks on its buffered wake channel. The opposite side stores its
	// index first and then checks the flag, so under sequentially
	// consistent atomics at least one of the two observes the other.
	prodParked atomic.Bool
	consParked atomic.Bool
	notFull    chan struct{}
	notEmpty   chan struct{}

	closed    atomic.Bool
	closeCh   chan struct{}
	closeOnce sync.Once

	aborted   atomic.Bool
	abortErr  error // written once before abortCh closes
	abortCh   chan struct{}
	abortOnce sync.Once
}

// New returns a ring with the given number of batch slots, rounded up to a
// power of two (minimum 1).
func New(slots int) *Ring {
	if slots < 1 {
		slots = 1
	}
	if slots&(slots-1) != 0 {
		slots = 1 << bits.Len(uint(slots))
	}
	return &Ring{
		slots:    make([]Batch, slots),
		mask:     uint64(slots - 1),
		notFull:  make(chan struct{}, 1),
		notEmpty: make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
		abortCh:  make(chan struct{}),
	}
}

// Cap returns the number of batch slots.
func (r *Ring) Cap() int { return len(r.slots) }

// Reserve returns the next free slot's batch, reset and ready to fill,
// blocking while the ring is full. It returns nil once the consumer has
// aborted (see Abort): the producer should stop emitting and surface
// r.Err(). The caller owns the returned batch until Commit.
func (r *Ring) Reserve() *Batch {
	if r.aborted.Load() {
		return nil
	}
	t := r.tail.Load()
	for {
		if t-r.head.Load() < uint64(len(r.slots)) {
			b := &r.slots[t&r.mask]
			b.Reset()
			return b
		}
		// Ring full: park until the consumer frees a slot. Publish the
		// intent first, then re-check, so a concurrent Release cannot slip
		// between check and sleep unseen.
		r.prodParked.Store(true)
		if t-r.head.Load() < uint64(len(r.slots)) {
			r.prodParked.Store(false)
			continue
		}
		select {
		case <-r.notFull:
		case <-r.abortCh:
			r.prodParked.Store(false)
			return nil
		}
		r.prodParked.Store(false)
	}
}

// Commit publishes the batch most recently returned by Reserve. The
// producer must not touch that batch afterwards.
func (r *Ring) Commit() {
	r.tail.Store(r.tail.Load() + 1)
	if r.consParked.Load() {
		select {
		case r.notEmpty <- struct{}{}:
		default:
		}
	}
}

// Close marks the stream complete: once the consumer drains the published
// batches, Acquire returns nil. Close is idempotent and must be called by
// the producer side (it does not publish a partially filled reservation —
// commit or drop that first).
func (r *Ring) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.closeCh)
	})
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool { return r.closed.Load() }

// Acquire returns the oldest published batch, blocking while the ring is
// empty. It returns nil when the ring is closed and fully drained, or when
// the consumer side has aborted. The caller owns the batch until Release.
func (r *Ring) Acquire() *Batch {
	h := r.head.Load()
	for {
		if h != r.tail.Load() {
			return &r.slots[h&r.mask]
		}
		if r.closed.Load() && h == r.tail.Load() {
			return nil
		}
		if r.aborted.Load() {
			return nil
		}
		r.consParked.Store(true)
		if h != r.tail.Load() || r.closed.Load() {
			r.consParked.Store(false)
			continue
		}
		select {
		case <-r.notEmpty:
		case <-r.closeCh:
		case <-r.abortCh:
		}
		r.consParked.Store(false)
	}
}

// Release retires the batch most recently returned by Acquire, freeing its
// slot for the producer.
func (r *Ring) Release() {
	r.head.Store(r.head.Load() + 1)
	if r.prodParked.Load() {
		select {
		case r.notFull <- struct{}{}:
		default:
		}
	}
}

// Abort tears the pipeline down from the consumer side: the producer's
// next Reserve (including one currently parked on a full ring) returns
// nil, and Err reports err ever after. The first Abort wins; err may be
// nil, in which case Err reports a generic abort error.
func (r *Ring) Abort(err error) {
	r.abortOnce.Do(func() {
		if err == nil {
			err = fmt.Errorf("ring: consumer aborted")
		}
		r.abortErr = err
		r.aborted.Store(true)
		close(r.abortCh)
	})
}

// Err returns the abort error, or nil if the consumer never aborted.
func (r *Ring) Err() error {
	select {
	case <-r.abortCh:
		return r.abortErr
	default:
		return nil
	}
}

// Drained reports whether every published batch has been released. It is
// exact only once the producer has stopped publishing (e.g. after Close);
// the flush-on-report barrier in internal/uarch relies on Close + drain
// loop exit rather than polling this.
func (r *Ring) Drained() bool { return r.head.Load() == r.tail.Load() }
