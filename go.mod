module gem5prof

go 1.22
