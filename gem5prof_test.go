package gem5prof_test

import (
	"testing"

	"gem5prof"
)

// TestPublicSurface exercises the façade end to end the way the README
// shows: a guest run, a co-simulation, platform constructors, and the
// experiment registry.
func TestPublicSurface(t *testing.T) {
	res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
		CPU:      gem5prof.Timing,
		Mode:     gem5prof.SE,
		Workload: "sieve",
		Scale:    1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ChecksumOK {
		t.Fatal("checksum mismatch through the façade")
	}

	sess, err := gem5prof.RunSession(gem5prof.SessionConfig{
		Guest: gem5prof.GuestConfig{CPU: gem5prof.Atomic, Workload: "sieve", Scale: 1024},
		Host:  gem5prof.M1Ultra(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.SimSeconds() <= 0 {
		t.Fatal("no host time")
	}

	if len(gem5prof.WorkloadNames()) != 13 {
		t.Fatalf("workloads = %v", gem5prof.WorkloadNames())
	}
	if len(gem5prof.PARSECWorkloads()) != 9 {
		t.Fatal("PARSEC set wrong")
	}
	if len(gem5prof.SPECNames()) != 3 {
		t.Fatal("SPEC set wrong")
	}
	if len(gem5prof.ExperimentIDs()) != 19 {
		t.Fatalf("experiments = %v", gem5prof.ExperimentIDs())
	}
	if _, err := gem5prof.PlatformByName("M1_Pro"); err != nil {
		t.Fatal(err)
	}
	if _, ok := gem5prof.WorkloadByName("canneal"); !ok {
		t.Fatal("canneal missing")
	}
	if _, err := gem5prof.SPECByName("505.mcf_r"); err != nil {
		t.Fatal(err)
	}

	// Contention helper is exported and keeps the set count.
	x := gem5prof.IntelXeon()
	c := gem5prof.Contend(x, gem5prof.Scenario{Procs: 20})
	if c.LLC.SizeBytes >= x.LLC.SizeBytes {
		t.Fatal("Contend did not partition")
	}

	// FireSim constructors.
	fb := gem5prof.FireSimBase()
	if err := fb.Validate(); err != nil {
		t.Fatal(err)
	}
	small := gem5prof.FireSimRocket(8, 2, 8, 2, 512, 8)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}

	// Table experiments render through the façade.
	exp, err := gem5prof.RunExperiment("table2", gem5prof.ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Render() == "" {
		t.Fatal("empty render")
	}
}
